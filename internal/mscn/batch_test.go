package mscn

import (
	"testing"

	"repro/internal/encoding"
)

// TestPredictFeaturizedBatchBitIdentical asserts the feature-tier
// inference path (cached per-node vectors, the query cache's hit path)
// equals both the batched and the per-sample paths bit for bit, across
// chunk boundaries.
func TestPredictFeaturizedBatchBitIdentical(t *testing.T) {
	f := testFeaturizer()
	m := New(f, 1)
	plans, ms := synthPlans(900, 2) // several inference chunks
	m.Train(plans[:80], ms[:80], 40)
	fps := make([]*encoding.FeaturizedPlan, len(plans))
	for i, p := range plans {
		fps[i] = f.Featurize(p)
	}
	got := m.PredictFeaturizedBatch(fps)
	want := m.PredictBatch(plans)
	for i := range plans {
		if got[i] != want[i] {
			t.Fatalf("plan %d: PredictFeaturizedBatch %v != PredictBatch %v", i, got[i], want[i])
		}
	}
	if out := m.PredictFeaturizedBatch(nil); out != nil {
		t.Fatalf("empty batch should return nil")
	}
}

// TestPredictBatchBitIdentical asserts the batched inference path equals
// the per-sample path bit for bit, including after training.
func TestPredictBatchBitIdentical(t *testing.T) {
	m := New(testFeaturizer(), 1)
	plans, ms := synthPlans(80, 2)
	m.Train(plans, ms, 60)
	batch := m.PredictBatch(plans)
	if len(batch) != len(plans) {
		t.Fatalf("batch size = %d, want %d", len(batch), len(plans))
	}
	for i, p := range plans {
		if s := m.PredictMs(p); batch[i] != s {
			t.Fatalf("plan %d: PredictBatch %v != PredictMs %v", i, batch[i], s)
		}
	}
	if out := m.PredictBatch(nil); out != nil {
		t.Fatalf("empty batch should return nil")
	}
}

// TestPredictBatchChunking drives a workload larger than one inference
// chunk (predictChunkNodes) and requires bit-identity across the chunk
// boundaries.
func TestPredictBatchChunking(t *testing.T) {
	m := New(testFeaturizer(), 9)
	plans, _ := synthPlans(900, 11) // ~1350 nodes → several chunks
	batch := m.PredictBatch(plans)
	for i, p := range plans {
		if s := m.PredictMs(p); batch[i] != s {
			t.Fatalf("plan %d: chunked PredictBatch %v != PredictMs %v", i, batch[i], s)
		}
	}
}

// weightsEqual compares two models' parameters bitwise.
func weightsEqual(t *testing.T, a, b *Model, label string) {
	t.Helper()
	for li := range a.SetNet.Layers {
		for i, w := range a.SetNet.Layers[li].W {
			if w != b.SetNet.Layers[li].W[i] {
				t.Fatalf("%s: SetNet layer %d W[%d]: %v != %v", label, li, i, w, b.SetNet.Layers[li].W[i])
			}
		}
		for i, v := range a.SetNet.Layers[li].B {
			if v != b.SetNet.Layers[li].B[i] {
				t.Fatalf("%s: SetNet layer %d B[%d] differs", label, li, i)
			}
		}
	}
	for li := range a.OutNet.Layers {
		for i, w := range a.OutNet.Layers[li].W {
			if w != b.OutNet.Layers[li].W[i] {
				t.Fatalf("%s: OutNet layer %d W[%d]: %v != %v", label, li, i, w, b.OutNet.Layers[li].W[i])
			}
		}
		for i, v := range a.OutNet.Layers[li].B {
			if v != b.OutNet.Layers[li].B[i] {
				t.Fatalf("%s: OutNet layer %d B[%d] differs", label, li, i)
			}
		}
	}
}

// TestTrainMatchesReference trains two identically seeded models — one on
// the batched minibatch path, one on the per-sample reference path — and
// requires bit-identical weight trajectories, at batch size 1 (the
// per-sample seed trajectory) and at the default batch size.
func TestTrainMatchesReference(t *testing.T) {
	plans, ms := synthPlans(120, 7)
	for _, bs := range []int{1, 0 /* default */} {
		batched := New(testFeaturizer(), 5)
		reference := New(testFeaturizer(), 5)
		batched.BatchSize = bs
		reference.BatchSize = bs
		batched.Train(plans, ms, 40)
		reference.TrainReference(plans, ms, 40)
		weightsEqual(t, batched, reference, "after training")
		// The rng must have advanced identically too: one more round on
		// each should stay in lockstep.
		batched.Train(plans, ms, 5)
		reference.TrainReference(plans, ms, 5)
		weightsEqual(t, batched, reference, "after resumed training")
	}
}
