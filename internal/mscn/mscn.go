// Package mscn reimplements MSCN (Kipf et al., "Learned Cardinalities:
// Estimating Correlated Joins with Deep Learning") extended to cost
// estimation the way the paper's §V-A describes: the output is the query
// cost rather than cardinality, and the per-node features are the same
// fine-grained operator features QPPNet uses.
//
// Architecturally MSCN is a deep-sets model: a shared set network embeds
// every plan node, embeddings are average-pooled, and a merge network maps
// the pooled vector to the predicted log-cost.
//
// Training and batch inference run vector-at-a-time: every minibatch
// gathers its plans' node features into one matrix and drives the batched
// nn kernels, which preserve the scalar path's accumulation order — so
// Train is bit-identical to the retained per-sample reference
// (TrainReference) at any batch size, and PredictBatch to PredictMs.
package mscn

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/encoding"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/planner"
)

// Hyperparameters following the reference MSCN sizing.
const (
	defaultHidden = 64
	defaultEmbed  = 32
	defaultLR     = 0.001
	batchSize     = 32
)

// Model is the set-based cost estimator.
type Model struct {
	F *encoding.Featurizer

	SetNet *nn.MLP // node features → embedding
	OutNet *nn.MLP // pooled embedding → log cost
	// BatchSize overrides the default minibatch size when positive. The
	// training trajectory is the same at every batch size modulo Adam's
	// step cadence; at any fixed size it is bit-identical to the
	// per-sample reference path.
	BatchSize int
	opt       *nn.Adam
	rng       *rand.Rand
}

// New builds an MSCN model.
func New(f *encoding.Featurizer, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	return &Model{
		F:      f,
		SetNet: nn.NewMLP([]int{f.Dim(), defaultHidden, defaultEmbed}, rng),
		OutNet: nn.NewMLP([]int{defaultEmbed, defaultHidden, 1}, rng),
		opt:    nn.NewAdam(defaultLR),
		rng:    rng,
	}
}

// Name implements the experiment harness's model interface.
func (m *Model) Name() string { return "mscn" }

func (m *Model) batch() int {
	if m.BatchSize > 0 {
		return m.BatchSize
	}
	return batchSize
}

type forwardCache struct {
	nodeCaches []*nn.Cache
	pooled     []float64
	outCache   *nn.Cache
	out        float64
	n          int
}

func (m *Model) forward(root *planner.Node) *forwardCache {
	fc := &forwardCache{pooled: make([]float64, m.SetNet.OutDim())}
	root.Walk(func(n *planner.Node) {
		emb, c := m.SetNet.Forward(m.F.Node(n))
		fc.nodeCaches = append(fc.nodeCaches, c)
		for i, v := range emb {
			fc.pooled[i] += v
		}
		fc.n++
	})
	inv := 1 / float64(fc.n)
	for i := range fc.pooled {
		fc.pooled[i] *= inv
	}
	y, oc := m.OutNet.Forward(fc.pooled)
	fc.outCache = oc
	fc.out = y[0]
	return fc
}

func (m *Model) backward(fc *forwardCache, dOut float64) {
	dPooled := m.OutNet.Backward(fc.outCache, []float64{dOut})
	inv := 1 / float64(fc.n)
	dEmb := make([]float64, len(dPooled))
	for i, v := range dPooled {
		dEmb[i] = v * inv
	}
	for _, c := range fc.nodeCaches {
		m.SetNet.Backward(c, dEmb)
	}
}

// PredictMs estimates the plan's execution time in milliseconds.
func (m *Model) PredictMs(root *planner.Node) float64 {
	fc := m.forward(root)
	return metrics.UnlogMs(fc.out)
}

// predictChunkNodes bounds how many node rows one inference batch
// materializes at a time, so pricing an arbitrarily large workload keeps
// bounded memory. Plans are independent, so chunking cannot change
// results.
const predictChunkNodes = 1024

// PredictBatch estimates every plan's execution time batched: all nodes
// of a chunk of plans go through the set network as a single matrix,
// pooled per plan, and the pooled batch goes through the merge network.
// Output i is bit-identical to PredictMs(roots[i]).
func (m *Model) PredictBatch(roots []*planner.Node) []float64 {
	if len(roots) == 0 {
		return nil
	}
	res := make([]float64, len(roots))
	ar := &linalg.Arena{}
	var nodes []*planner.Node
	var counts []int
	for start := 0; start < len(roots); {
		ar.Reset()
		nodes, counts = nodes[:0], counts[:0]
		end := start
		for end < len(roots) && (end == start || len(nodes)+roots[end].CountNodes() <= predictChunkNodes) {
			before := len(nodes)
			roots[end].Walk(func(n *planner.Node) { nodes = append(nodes, n) })
			counts = append(counts, len(nodes)-before)
			end++
		}
		m.predictChunk(ar, m.F.NodesMatrix(nodes), counts, res[start:end])
		start = end
	}
	return res
}

// PredictFeaturizedBatch is PredictBatch over pre-featurized plans (the
// query cache's feature tier): node features come from the cached
// pre-order rows instead of the featurizer, and everything downstream —
// chunk boundaries, set-network batching, pooling order — is identical,
// so output i is bit-identical to PredictMs(fps[i].Root).
func (m *Model) PredictFeaturizedBatch(fps []*encoding.FeaturizedPlan) []float64 {
	if len(fps) == 0 {
		return nil
	}
	res := make([]float64, len(fps))
	ar := &linalg.Arena{}
	var counts []int
	for start := 0; start < len(fps); {
		ar.Reset()
		counts = counts[:0]
		end, total := start, 0
		for end < len(fps) && (end == start || total+fps[end].NumNodes() <= predictChunkNodes) {
			counts = append(counts, fps[end].NumNodes())
			total += fps[end].NumNodes()
			end++
		}
		x := linalg.NewMatrix(total, m.F.Dim())
		row := 0
		for s := start; s < end; s++ {
			for _, v := range fps[s].Pre {
				copy(x.RowView(row), v)
				row++
			}
		}
		m.predictChunk(ar, x, counts, res[start:end])
		start = end
	}
	return res
}

// predictChunk prices one gathered chunk: x holds the chunk's node rows
// (plans consecutive, nodes in pre-order), counts the per-plan node
// counts; out receives one prediction per plan.
func (m *Model) predictChunk(ar *linalg.Arena, x *linalg.Matrix, counts []int, out []float64) {
	emb := m.SetNet.PredictBatch(ar, x)
	pooled := poolByPlan(ar, emb, counts)
	y := m.OutNet.PredictBatch(ar, pooled)
	for i := range counts {
		out[i] = metrics.UnlogMs(y.At(i, 0))
	}
}

// poolByPlan average-pools consecutive embedding rows per plan, summing in
// row (pre-order) order — the scalar pooling order.
func poolByPlan(ar *linalg.Arena, emb *linalg.Matrix, counts []int) *linalg.Matrix {
	pooled := ar.AllocZero(len(counts), emb.Cols)
	row := 0
	for s, c := range counts {
		prow := pooled.RowView(s)
		for k := 0; k < c; k++ {
			erow := emb.RowView(row)
			for i, v := range erow {
				prow[i] += v
			}
			row++
		}
		inv := 1 / float64(c)
		for i := range prow {
			prow[i] *= inv
		}
	}
	return pooled
}

// Train fits the model for the given number of mini-batch iterations and
// returns wall-clock training time. Each iteration draws a minibatch,
// gathers its node features (featurized lazily, once per plan, and cached
// for the duration of the call), and runs one batched forward/backward
// through both networks. The weight trajectory is bit-identical to
// TrainReference with the same model state and iteration count.
func (m *Model) Train(plans []*planner.Node, ms []float64, iters int) time.Duration {
	d, _ := m.TrainCtx(context.Background(), plans, ms, iters)
	return d
}

// TrainCtx is Train with cooperative cancellation: ctx is checked at the
// top of every minibatch iteration — never inside one — so cancellation
// stops training promptly (within one minibatch) and the weights are
// always left in the consistent state of the last completed optimizer
// step. Iterations that do run consume rng and update weights exactly
// like Train, so an uncancelled TrainCtx is bit-identical to Train.
func (m *Model) TrainCtx(ctx context.Context, plans []*planner.Node, ms []float64, iters int) (time.Duration, error) {
	start := time.Now()
	if len(plans) == 0 {
		return time.Since(start), nil
	}
	layers := nn.LayersOf(m.SetNet, m.OutNet)
	targets := make([]float64, len(ms))
	for i, v := range ms {
		targets[i] = metrics.LogMs(v)
	}
	bs := m.batch()
	feats := make([]*linalg.Matrix, len(plans)) // lazy per-plan node features
	idx := make([]int, bs)
	counts := make([]int, bs)
	ar := &linalg.Arena{} // per-iteration batch matrices, reused across iterations
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return time.Since(start), err
		}
		ar.Reset()
		total := 0
		for b := range idx {
			j := m.rng.Intn(len(plans))
			idx[b] = j
			if feats[j] == nil {
				feats[j] = m.F.PlanMatrix(plans[j])
			}
			counts[b] = feats[j].Rows
			total += feats[j].Rows
		}
		// Gather the minibatch's node features into one matrix, plans in
		// draw order, nodes in pre-order within each plan.
		x := ar.Alloc(total, m.F.Dim())
		row := 0
		for b, j := range idx {
			copy(x.Data[row*x.Cols:], feats[j].Data)
			row += counts[b]
		}
		emb, setCache := m.SetNet.ForwardBatch(ar, x)
		pooled := poolByPlan(ar, emb, counts)
		out, outCache := m.OutNet.ForwardBatch(ar, pooled)
		dOut := ar.Alloc(bs, 1)
		for b := range idx {
			dOut.Data[b] = 2 * (out.At(b, 0) - targets[idx[b]])
		}
		dPooled := m.OutNet.BackwardBatch(ar, outCache, dOut)
		// Spread each plan's pooled gradient across its node rows.
		dEmb := ar.Alloc(total, emb.Cols)
		row = 0
		for b, c := range counts {
			inv := 1 / float64(c)
			prow := dPooled.RowView(b)
			for k := 0; k < c; k++ {
				erow := dEmb.RowView(row)
				for i, v := range prow {
					erow[i] = v * inv
				}
				row++
			}
		}
		// The set network's input gradient has no consumer; skip it.
		m.SetNet.BackwardBatchNoInput(ar, setCache, dEmb)
		m.opt.Step(layers, bs)
	}
	return time.Since(start), nil
}

// TrainReference is the original per-sample training loop, retained as the
// bit-equality oracle for Train (the equivalence tests assert identical
// weight trajectories) and as the scalar arm of the train-iteration
// microbenchmarks. It consumes the model's rng exactly like Train.
func (m *Model) TrainReference(plans []*planner.Node, ms []float64, iters int) time.Duration {
	start := time.Now()
	if len(plans) == 0 {
		return time.Since(start)
	}
	layers := nn.LayersOf(m.SetNet, m.OutNet)
	targets := make([]float64, len(ms))
	for i, v := range ms {
		targets[i] = metrics.LogMs(v)
	}
	bs := m.batch()
	for it := 0; it < iters; it++ {
		sz := 0
		for b := 0; b < bs; b++ {
			j := m.rng.Intn(len(plans))
			fc := m.forward(plans[j])
			diff := fc.out - targets[j]
			m.backward(fc, 2*diff)
			sz++
		}
		m.opt.Step(layers, sz)
	}
	return time.Since(start)
}

// Clone deep-copies the model weights.
func (m *Model) Clone() *Model {
	return &Model{
		F:         m.F,
		SetNet:    m.SetNet.Clone(),
		OutNet:    m.OutNet.Clone(),
		BatchSize: m.BatchSize,
		opt:       nn.NewAdam(defaultLR),
		rng:       rand.New(rand.NewSource(m.rng.Int63())),
	}
}

// SetFeaturizer swaps the featurizer; dimensions must match.
func (m *Model) SetFeaturizer(f *encoding.Featurizer) {
	if f.Dim() != m.F.Dim() {
		panic("mscn: featurizer dimension mismatch")
	}
	m.F = f
}

// NumParams reports the trainable parameter count.
func (m *Model) NumParams() int { return m.SetNet.NumParams() + m.OutNet.NumParams() }
