// Package mscn reimplements MSCN (Kipf et al., "Learned Cardinalities:
// Estimating Correlated Joins with Deep Learning") extended to cost
// estimation the way the paper's §V-A describes: the output is the query
// cost rather than cardinality, and the per-node features are the same
// fine-grained operator features QPPNet uses.
//
// Architecturally MSCN is a deep-sets model: a shared set network embeds
// every plan node, embeddings are average-pooled, and a merge network maps
// the pooled vector to the predicted log-cost.
package mscn

import (
	"math/rand"
	"time"

	"repro/internal/encoding"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/planner"
)

// Hyperparameters following the reference MSCN sizing.
const (
	defaultHidden = 64
	defaultEmbed  = 32
	defaultLR     = 0.001
	batchSize     = 32
)

// Model is the set-based cost estimator.
type Model struct {
	F *encoding.Featurizer

	SetNet *nn.MLP // node features → embedding
	OutNet *nn.MLP // pooled embedding → log cost
	opt    *nn.Adam
	rng    *rand.Rand
}

// New builds an MSCN model.
func New(f *encoding.Featurizer, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	return &Model{
		F:      f,
		SetNet: nn.NewMLP([]int{f.Dim(), defaultHidden, defaultEmbed}, rng),
		OutNet: nn.NewMLP([]int{defaultEmbed, defaultHidden, 1}, rng),
		opt:    nn.NewAdam(defaultLR),
		rng:    rng,
	}
}

// Name implements the experiment harness's model interface.
func (m *Model) Name() string { return "mscn" }

type forwardCache struct {
	nodeCaches []*nn.Cache
	pooled     []float64
	outCache   *nn.Cache
	out        float64
	n          int
}

func (m *Model) forward(root *planner.Node) *forwardCache {
	fc := &forwardCache{pooled: make([]float64, m.SetNet.OutDim())}
	root.Walk(func(n *planner.Node) {
		emb, c := m.SetNet.Forward(m.F.Node(n))
		fc.nodeCaches = append(fc.nodeCaches, c)
		for i, v := range emb {
			fc.pooled[i] += v
		}
		fc.n++
	})
	inv := 1 / float64(fc.n)
	for i := range fc.pooled {
		fc.pooled[i] *= inv
	}
	y, oc := m.OutNet.Forward(fc.pooled)
	fc.outCache = oc
	fc.out = y[0]
	return fc
}

func (m *Model) backward(fc *forwardCache, dOut float64) {
	dPooled := m.OutNet.Backward(fc.outCache, []float64{dOut})
	inv := 1 / float64(fc.n)
	dEmb := make([]float64, len(dPooled))
	for i, v := range dPooled {
		dEmb[i] = v * inv
	}
	for _, c := range fc.nodeCaches {
		m.SetNet.Backward(c, dEmb)
	}
}

// PredictMs estimates the plan's execution time in milliseconds.
func (m *Model) PredictMs(root *planner.Node) float64 {
	fc := m.forward(root)
	return metrics.UnlogMs(fc.out)
}

// Train fits the model for the given number of mini-batch iterations and
// returns wall-clock training time.
func (m *Model) Train(plans []*planner.Node, ms []float64, iters int) time.Duration {
	start := time.Now()
	if len(plans) == 0 {
		return time.Since(start)
	}
	layers := nn.LayersOf(m.SetNet, m.OutNet)
	targets := make([]float64, len(ms))
	for i, v := range ms {
		targets[i] = metrics.LogMs(v)
	}
	for it := 0; it < iters; it++ {
		sz := 0
		for b := 0; b < batchSize; b++ {
			j := m.rng.Intn(len(plans))
			fc := m.forward(plans[j])
			diff := fc.out - targets[j]
			m.backward(fc, 2*diff)
			sz++
		}
		m.opt.Step(layers, sz)
	}
	return time.Since(start)
}

// Clone deep-copies the model weights.
func (m *Model) Clone() *Model {
	return &Model{
		F:      m.F,
		SetNet: m.SetNet.Clone(),
		OutNet: m.OutNet.Clone(),
		opt:    nn.NewAdam(defaultLR),
		rng:    rand.New(rand.NewSource(m.rng.Int63())),
	}
}

// SetFeaturizer swaps the featurizer; dimensions must match.
func (m *Model) SetFeaturizer(f *encoding.Featurizer) {
	if f.Dim() != m.F.Dim() {
		panic("mscn: featurizer dimension mismatch")
	}
	m.F = f
}

// NumParams reports the trainable parameter count.
func (m *Model) NumParams() int { return m.SetNet.NumParams() + m.OutNet.NumParams() }
