package core

import (
	"context"
	"fmt"

	"repro/internal/workload"
)

// RetrainCtx is the windowed retraining entry point behind online
// adaptation (internal/online): it continues training res's model in
// place on a sliding window of recently labeled queries. The featurizer
// — snapshots and reduction mask — is deliberately left untouched: the
// window is far too small to refit either, and keeping the feature
// layout frozen is what lets an adapted model keep serving through the
// same encoding (and lets Save/Load round-trip it unchanged).
//
// Training starts from the model's current weights with a fresh
// optimizer (matching the Save/Load contract: optimizer state is not
// part of an estimator's identity). ctx is checked between minibatches,
// so a cancelled retrain stops at an optimizer-step boundary and
// returns ctx's error; the weights then hold the last completed step —
// callers adapting a *copy* of a serving model (the hot-swap protocol)
// simply discard it.
func RetrainCtx(ctx context.Context, res *Result, window []workload.Sample, iters int) error {
	if res == nil || res.Model == nil {
		return fmt.Errorf("core: retrain needs a trained result")
	}
	if len(window) == 0 {
		return fmt.Errorf("core: retrain requires a non-empty window (got 0 samples)")
	}
	if iters <= 0 {
		return fmt.Errorf("core: retrain iterations must be positive (got %d)", iters)
	}
	plans, ms := workload.PlansAndLabels(window)
	dt, err := res.Model.TrainCtx(ctx, plans, ms, iters)
	res.TrainTime += dt
	if err != nil {
		return fmt.Errorf("core: retrain cancelled after %v: %w", dt, err)
	}
	return nil
}
