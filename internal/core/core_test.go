package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/workload"
)

var (
	sysb = datagen.Sysbench(1)
	envs = dbenv.SampleSet(4, 3)
)

// labeledPool is collected once; tests slice it.
var pool = func() *workload.Labeled {
	lab, err := workload.Collect(sysb, envs, 120, 5)
	if err != nil {
		panic(err)
	}
	return lab
}()

func smallConfig(model string) Config {
	cfg := DefaultConfig(model)
	cfg.TrainIters = 150
	cfg.ProbeEpochs = 15
	cfg.ProbeSamples = 800
	cfg.NumReferences = 40
	return cfg
}

func TestPipelinePlainMSCN(t *testing.T) {
	cfg := smallConfig("mscn")
	cfg.UseSnapshot = false
	cfg.Reduction = ReduceNone
	train, test := workload.Split(pool.Scale(400), 0.8)
	res, err := Run(sysb, envs, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(res.Model, test)
	if s.Pearson < 0.5 {
		t.Fatalf("plain MSCN pearson = %v, want ≥0.5", s.Pearson)
	}
	if res.Mask != nil || res.SnapshotMs != 0 {
		t.Fatalf("plain run should have no snapshot/mask")
	}
}

func TestPipelineQCFEBeatsPlain(t *testing.T) {
	// The paper's headline: QCFE(mscn) ≥ MSCN in accuracy.
	train, test := workload.Split(pool.Scale(600), 0.8)

	plain := smallConfig("mscn")
	plain.UseSnapshot = false
	plain.Reduction = ReduceNone
	pres, err := Run(sysb, envs, train, plain)
	if err != nil {
		t.Fatal(err)
	}
	ps := Evaluate(pres.Model, test)

	qcfe := smallConfig("mscn")
	qres, err := Run(sysb, envs, train, qcfe)
	if err != nil {
		t.Fatal(err)
	}
	qs := Evaluate(qres.Model, test)

	if qs.Mean > ps.Mean*1.10 {
		t.Fatalf("QCFE mean q-error %.3f much worse than plain %.3f", qs.Mean, ps.Mean)
	}
	if qres.SnapshotMs <= 0 {
		t.Fatalf("snapshot collection cost not recorded")
	}
	if qres.ReductionRatio <= 0 {
		t.Fatalf("no features reduced")
	}
}

func TestPipelineQPPNet(t *testing.T) {
	cfg := smallConfig("qppnet")
	cfg.TrainIters = 120
	train, test := workload.Split(pool.Scale(400), 0.8)
	res, err := Run(sysb, envs, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(res.Model, test)
	if s.Pearson < 0.4 {
		t.Fatalf("QCFE(qpp) pearson = %v", s.Pearson)
	}
	if res.TrainTime <= 0 {
		t.Fatalf("train time not measured")
	}
}

func TestSnapshotModes(t *testing.T) {
	for _, mode := range []SnapshotMode{FSO, FST} {
		cfg := smallConfig("mscn")
		cfg.SnapshotMode = mode
		cfg.FSOPerEnv = 14
		snaps, ms, err := BuildSnapshots(sysb, envs[:2], cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(snaps) != 2 || ms <= 0 {
			t.Fatalf("%s: snaps=%d ms=%v", mode, len(snaps), ms)
		}
	}
	bad := smallConfig("mscn")
	bad.SnapshotMode = "nope"
	if _, _, err := BuildSnapshots(sysb, envs[:1], bad); err == nil {
		t.Fatalf("unknown mode should error")
	}
}

func TestReductionMethods(t *testing.T) {
	train, _ := workload.Split(pool.Scale(300), 0.8)
	f := &encoding.Featurizer{Enc: encoding.New(sysb.Schema)}
	for _, method := range []ReductionMethod{ReduceFR, ReduceGD, ReduceGreedy} {
		cfg := smallConfig("mscn")
		cfg.Reduction = method
		cfg.ProbeEpochs = 8
		cfg.ProbeSamples = 300
		mask, rt, err := Reduce(f, train, cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if mask == nil || rt <= 0 {
			t.Fatalf("%s: no mask/time", method)
		}
	}
	cfg := smallConfig("mscn")
	cfg.Reduction = ReduceNone
	mask, _, err := Reduce(f, train, cfg)
	if err != nil || mask != nil {
		t.Fatalf("none should produce nil mask")
	}
}

func TestOperatorDatasetShape(t *testing.T) {
	f := &encoding.Featurizer{Enc: encoding.New(sysb.Schema)}
	train := pool.Scale(50)
	d := OperatorDataset(f, train)
	var wantRows int
	for _, s := range train {
		wantRows += s.Plan.CountNodes()
	}
	if len(d.X) != wantRows {
		t.Fatalf("operator rows = %d, want %d", len(d.X), wantRows)
	}
	if d.Dim() != f.RawDim() || len(d.Names) != d.Dim() {
		t.Fatalf("dims misaligned: %d vs %d", d.Dim(), f.RawDim())
	}
}

func TestNewEstimatorUnknown(t *testing.T) {
	if _, err := NewEstimator("tree-lstm", nil, nil, 1); err == nil {
		t.Fatalf("unknown model should error")
	}
}

func TestTransferWorkflow(t *testing.T) {
	cfg := smallConfig("mscn")
	train, _ := workload.Split(pool.Scale(400), 0.8)
	basis, err := Run(sysb, envs, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// New environment: different hardware (the paper's h2).
	h2 := dbenv.Default()
	h2.ID = 99
	h2.HW, _ = dbenv.ProfileByName("i7-12700h-nvme")
	lab2, err := workload.Collect(sysb, []*dbenv.Environment{h2}, 150, 77)
	if err != nil {
		t.Fatal(err)
	}
	tr2, te2 := workload.Split(lab2.Samples, 0.8)

	trans, err := Transfer(basis, sysb, h2, tr2, cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(trans.Model, te2)
	if s.Pearson < 0.4 {
		t.Fatalf("transferred model pearson = %v", s.Pearson)
	}
	if trans.SnapshotMs <= 0 || trans.RetrainTime <= 0 {
		t.Fatalf("transfer bookkeeping missing")
	}
	// The basis model must be untouched by the transfer retraining.
	if basis.Model.PredictMs(te2[0].Plan) == 0 {
		t.Fatalf("basis model broken")
	}
}

func TestTrainCurveDecreases(t *testing.T) {
	cfg := smallConfig("mscn")
	cfg.UseSnapshot = false
	cfg.Reduction = ReduceNone
	train, test := workload.Split(pool.Scale(400), 0.8)
	f := &encoding.Featurizer{Enc: encoding.New(sysb.Schema)}
	m, err := NewEstimator("mscn", f, sysb.Stats, 2)
	if err != nil {
		t.Fatal(err)
	}
	curve := TrainCurve(m, train, test, 120, 30)
	if len(curve) != 4 {
		t.Fatalf("curve points = %d", len(curve))
	}
	if curve[len(curve)-1] > curve[0] {
		t.Fatalf("q-error should improve over training: %v", curve)
	}
}
