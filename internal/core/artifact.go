package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"repro/internal/artifact"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/featred"
	"repro/internal/mscn"
	"repro/internal/qppnet"
	"repro/internal/snapshot"
)

// ArtifactVersion is the persistent artifact format version. Bump it on
// any layout change; loaders reject other versions loudly rather than
// misreading bytes.
const ArtifactVersion = 1

// Artifact is one loaded model artifact: the rebuilt dataset, the
// environment set the model was trained across, the pipeline
// configuration, and the trained Result (model weights, featurizer with
// snapshots and mask, bookkeeping). It is everything needed to serve the
// model — or to keep training it.
type Artifact struct {
	BenchName string
	BenchSeed int64
	DS        *datagen.Dataset
	Envs      []*dbenv.Environment
	Cfg       Config
	Res       *Result
}

// fingerprint hashes everything the artifact's feature layout depends on:
// the benchmark identity (name + generation seed) and the featurizer's
// raw feature names (which encode the schema vocabularies, the numeric
// block, and snapshot-block presence). A loader recomputes it against the
// code it is running and the dataset it rebuilt; a mismatch means the
// artifact's feature vectors would not line up with this build's
// encoding, so loading fails loudly instead of predicting garbage.
func fingerprint(benchName string, benchSeed int64, featureNames []string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00", benchName, benchSeed)
	for _, n := range featureNames {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// SaveArtifact writes one versioned binary artifact: magic header, format
// version, benchmark/seed fingerprint, pipeline config, environment set,
// featurizer state (per-environment snapshots + reduction mask), model
// weights, and a CRC-32 trailer. The written bytes are deterministic for
// a given trained pipeline, and a LoadArtifact of them reproduces the
// model's predictions bit for bit.
func SaveArtifact(w io.Writer, benchName string, benchSeed int64, envs []*dbenv.Environment, cfg Config, res *Result) error {
	if res == nil || res.Model == nil || res.F == nil {
		return fmt.Errorf("core: cannot save an empty result")
	}
	modelName := res.Model.Name()
	e := &artifact.Encoder{}

	// Header: model identity + benchmark fingerprint.
	e.Str(modelName)
	e.Str(benchName)
	e.I64(benchSeed)
	e.I64(fingerprint(benchName, benchSeed, res.F.Names()))

	// Pipeline configuration (everything except Prebuilt, which is an
	// in-process cache handle, not state).
	e.Str(cfg.Model)
	e.Bool(cfg.UseSnapshot)
	e.Str(string(cfg.SnapshotMode))
	e.Int(cfg.TemplateScale)
	e.Int(cfg.FSOPerEnv)
	e.Str(string(cfg.Reduction))
	e.Int(cfg.NumReferences)
	e.F64(cfg.Threshold)
	e.Int(cfg.TrainIters)
	e.Int(cfg.ProbeEpochs)
	e.Int(cfg.ProbeSamples)
	e.I64(cfg.Seed)

	// Environment set.
	e.U32(uint32(len(envs)))
	for _, env := range envs {
		env.Encode(e)
	}

	// Featurizer state: per-environment snapshots in ascending env-ID
	// order (map iteration order must not leak into the bytes), then the
	// reduction mask.
	e.Bool(res.F.Snaps != nil)
	if res.F.Snaps != nil {
		ids := make([]int, 0, len(res.F.Snaps))
		for id := range res.F.Snaps {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		e.U32(uint32(len(ids)))
		for _, id := range ids {
			e.Int(id)
			res.F.Snaps[id].Encode(e)
		}
	}
	e.Bools(res.F.Mask)

	// Bookkeeping the serving front end reports.
	e.I64(int64(res.TrainTime))
	e.F64(res.SnapshotMs)
	e.I64(int64(res.ReductionTime))
	e.F64(res.ReductionRatio)
	e.Int(res.RawDim)

	// Model weights.
	switch m := res.Model.(type) {
	case *mscn.Model:
		m.Encode(e)
	case *qppnet.Model:
		m.Encode(e)
	case *Analytic:
		// Stateless: fully reconstructed from the dataset statistics.
	default:
		return fmt.Errorf("core: cannot save estimator %T", res.Model)
	}

	return e.WriteTo(w, ArtifactVersion)
}

// LoadArtifact reads an artifact written by SaveArtifact: it validates
// the magic, version, and checksum, rebuilds the benchmark dataset from
// its recorded (name, seed) — dataset generation is deterministic — and
// verifies the fingerprint against this build's feature layout before
// reconstructing the featurizer and model. The loaded model's
// EstimateBatch output is bit-identical to the saved model's.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	d, err := artifact.NewDecoder(r, ArtifactVersion)
	if err != nil {
		return nil, err
	}

	a := &Artifact{}
	modelName := d.Str()
	a.BenchName = d.Str()
	a.BenchSeed = d.I64()
	wantFP := d.I64()
	if err := d.Err(); err != nil {
		return nil, err
	}

	a.Cfg.Model = d.Str()
	a.Cfg.UseSnapshot = d.Bool()
	a.Cfg.SnapshotMode = SnapshotMode(d.Str())
	a.Cfg.TemplateScale = d.Int()
	a.Cfg.FSOPerEnv = d.Int()
	a.Cfg.Reduction = ReductionMethod(d.Str())
	a.Cfg.NumReferences = d.Int()
	a.Cfg.Threshold = d.F64()
	a.Cfg.TrainIters = d.Int()
	a.Cfg.ProbeEpochs = d.Int()
	a.Cfg.ProbeSamples = d.Int()
	a.Cfg.Seed = d.I64()

	nEnvs := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	a.Envs = make([]*dbenv.Environment, 0, nEnvs)
	for i := 0; i < nEnvs; i++ {
		env, err := dbenv.Decode(d)
		if err != nil {
			return nil, fmt.Errorf("core: environment %d: %w", i, err)
		}
		a.Envs = append(a.Envs, env)
	}

	ds, err := datagen.Build(a.BenchName, a.BenchSeed)
	if err != nil {
		return nil, fmt.Errorf("core: artifact references benchmark %q: %w", a.BenchName, err)
	}
	a.DS = ds

	f := &encoding.Featurizer{Enc: encoding.New(ds.Schema)}
	if d.Bool() { // snapshot block present
		nSnaps := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		f.Snaps = make(map[int]*snapshot.Snapshot, nSnaps)
		for i := 0; i < nSnaps; i++ {
			id := d.Int()
			snap, err := snapshot.Decode(d)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot for env %d: %w", id, err)
			}
			f.Snaps[id] = snap
		}
	}
	mask := d.Bools()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if mask != nil {
		if err := featred.Validate(mask, f.RawDim()); err != nil {
			return nil, fmt.Errorf("core: artifact reduction mask: %w", err)
		}
		f.Mask = mask
	}

	// The fingerprint is recomputed from the rebuilt dataset and this
	// build's encoding — not from the artifact's bytes — so it catches
	// both a changed dataset generator and a changed feature layout.
	if gotFP := fingerprint(a.BenchName, a.BenchSeed, f.Names()); gotFP != wantFP {
		return nil, fmt.Errorf("core: stale artifact: fingerprint mismatch for %s/seed=%d (artifact %x, this build %x) — the dataset generator or feature encoding changed since the artifact was written; retrain and re-save",
			a.BenchName, a.BenchSeed, uint64(wantFP), uint64(gotFP))
	}

	res := &Result{F: f, Mask: mask}
	res.TrainTime = time.Duration(d.I64())
	res.SnapshotMs = d.F64()
	res.ReductionTime = time.Duration(d.I64())
	res.ReductionRatio = d.F64()
	res.RawDim = d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}

	switch modelName {
	case "mscn":
		m, err := mscn.Decode(d, f, a.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Model = m
	case "qppnet":
		m, err := qppnet.Decode(d, f, a.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Model = m
	case "analytic":
		res.Model = NewAnalytic(ds.Stats)
	default:
		return nil, fmt.Errorf("core: artifact contains unknown model %q", modelName)
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	a.Res = res
	return a, nil
}
