package core

import (
	"context"
	"time"

	"repro/internal/catalog"
	"repro/internal/encoding"
	"repro/internal/pgcost"
	"repro/internal/planner"
)

// Analytic adapts the PostgreSQL-style analytic cost model (the paper's
// PGSQL baseline) to the Estimator interface, making "analytic" a
// first-class pipeline model next to "qppnet" and "mscn": it can be
// fitted (a no-op — the model has no trainable state), evaluated,
// saved, loaded, and served through the same front ends. Predictions
// depend only on the plan and the dataset statistics, never on the
// featurizer or environment — which is exactly the blindness the paper's
// Figure 1 quantifies.
type Analytic struct {
	model *pgcost.Model
}

// NewAnalytic builds the analytic estimator over a dataset's statistics.
func NewAnalytic(stats *catalog.Stats) *Analytic {
	return &Analytic{model: pgcost.New(stats)}
}

// Name implements Estimator.
func (a *Analytic) Name() string { return "analytic" }

// Train implements Estimator as a no-op: the analytic model has no
// trainable parameters.
func (a *Analytic) Train(_ []*planner.Node, _ []float64, _ int) time.Duration { return 0 }

// TrainCtx implements Estimator as a no-op.
func (a *Analytic) TrainCtx(ctx context.Context, _ []*planner.Node, _ []float64, _ int) (time.Duration, error) {
	return 0, ctx.Err()
}

// PredictMs prices the plan with the analytic cost formula.
func (a *Analytic) PredictMs(root *planner.Node) float64 { return a.model.EstimateMs(root) }

// PredictBatch prices every plan; element i equals PredictMs(roots[i])
// trivially (each plan is priced independently).
func (a *Analytic) PredictBatch(roots []*planner.Node) []float64 {
	if len(roots) == 0 {
		return nil
	}
	out := make([]float64, len(roots))
	for i, r := range roots {
		out[i] = a.model.EstimateMs(r)
	}
	return out
}

// PredictFeaturizedBatch implements Estimator; the analytic model reads
// the plan, not the cached feature rows, so it prices the roots directly.
func (a *Analytic) PredictFeaturizedBatch(fps []*encoding.FeaturizedPlan) []float64 {
	if len(fps) == 0 {
		return nil
	}
	out := make([]float64, len(fps))
	for i, fp := range fps {
		out[i] = a.model.EstimateMs(fp.Root)
	}
	return out
}

// SetFeaturizer implements Estimator; the analytic model reads no
// features, so swapping the featurizer is a no-op.
func (a *Analytic) SetFeaturizer(*encoding.Featurizer) {}
