package core

import (
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/mscn"
	"repro/internal/qppnet"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// TransferResult is an adapted model for a new environment (§V-E).
type TransferResult struct {
	Model       Estimator
	RetrainTime time.Duration
	SnapshotMs  float64 // collection cost of the new environment's snapshot
}

// cloneEstimator deep-copies a trained model's weights.
func cloneEstimator(e Estimator) (Estimator, error) {
	switch m := e.(type) {
	case *qppnet.Model:
		return m.Clone(), nil
	case *mscn.Model:
		return m.Clone(), nil
	case *Analytic:
		// Stateless: transferring the analytic baseline is the identity.
		return m, nil
	}
	return nil, fmt.Errorf("core: cannot clone estimator %T", e)
}

// Transfer implements the paper's §V-E hardware-transfer workflow: keep the
// basis model's weights and feature mask, replace only the feature snapshot
// with one fitted in the new environment, and retrain briefly on a small
// labeled set collected there. The paper's finding is that this reaches the
// accuracy of full retraining at ~25% of the training time.
func Transfer(basis *Result, ds *datagen.Dataset, newEnv *dbenv.Environment, train []workload.Sample, cfg Config, retrainIters int) (*TransferResult, error) {
	out := &TransferResult{}
	newF := &encoding.Featurizer{Enc: basis.F.Enc, Mask: basis.F.Mask}
	if basis.F.Snaps != nil {
		snaps, ms, err := BuildSnapshots(ds, []*dbenv.Environment{newEnv}, cfg)
		if err != nil {
			return nil, err
		}
		newF.Snaps = snaps
		out.SnapshotMs = ms
	}
	model, err := cloneEstimator(basis.Model)
	if err != nil {
		return nil, err
	}
	model.SetFeaturizer(newF)
	plans, ms := workload.PlansAndLabels(train)
	out.RetrainTime = model.Train(plans, ms, retrainIters)
	out.Model = model
	return out, nil
}

// TrainCurve trains a fresh (or transferred) model in chunks and records
// the test mean q-error after every chunk — the convergence series of
// Figure 8.
func TrainCurve(m Estimator, train, test []workload.Sample, totalIters, chunk int) []float64 {
	plans, ms := workload.PlansAndLabels(train)
	var curve []float64
	for done := 0; done < totalIters; done += chunk {
		step := chunk
		if done+step > totalIters {
			step = totalIters - done
		}
		m.Train(plans, ms, step)
		curve = append(curve, Evaluate(m, test).Mean)
	}
	return curve
}

// SnapshotForEnv fits a single environment's snapshot with the given
// config — a convenience for examples and the transfer experiments.
func SnapshotForEnv(ds *datagen.Dataset, env *dbenv.Environment, cfg Config) (*snapshot.Snapshot, float64, error) {
	snaps, ms, err := BuildSnapshots(ds, []*dbenv.Environment{env}, cfg)
	if err != nil {
		return nil, 0, err
	}
	return snaps[env.ID], ms, nil
}
