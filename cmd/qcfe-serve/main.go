// Command qcfe-serve is the serving daemon of the train-once/serve-many
// flow: it loads a model artifact written by CostEstimator.Save (e.g.
// via `qcfe-bench -save`), and serves cost estimates over HTTP, turning
// the estimator stack's batched inference kernels into throughput by
// coalescing concurrent single-query requests into micro-batches.
//
// Usage:
//
//	qcfe-serve -artifact model.qcfe -addr :8080
//
// Endpoints:
//
//	POST /estimate        {"env":0,"sql":"SELECT ..."}  → {"ms":1.23}
//	POST /estimate_batch  {"env":0,"sqls":["...",...]}  → {"ms":[...]}
//	GET  /healthz                                       → model identity
//	GET  /stats                                         → serving counters
//
// A sharded query-fingerprint cache (on by default; -cache=false
// disables, -cache-shards/-cache-capacity size it) short-circuits warm
// repeats before the coalescing queue and reuses plan skeletons and
// featurizations across literal variants; /stats reports per-tier
// hit/miss/size counters.
//
// Predictions are bit-identical to the library's EstimateSQL on the same
// artifact, cached or not. SIGINT/SIGTERM trigger a graceful shutdown:
// in-flight requests finish, queued requests fail with a shutdown error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	qcfe "repro"
	"repro/internal/parallel"
	"repro/internal/serve"
)

func main() {
	artifactPath := flag.String("artifact", "", "path to a model artifact written by CostEstimator.Save / qcfe-bench -save (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	maxBatch := flag.Int("max-batch", 64, "largest coalesced micro-batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "longest a request waits for batch companions")
	workers := flag.Int("workers", 0, "worker-pool size for the per-batch planning fan-out (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "enable the sharded query-fingerprint cache (template/feature/prediction tiers); hits are bit-identical to cold estimates")
	cacheShards := flag.Int("cache-shards", 0, "cache shard count per tier, rounded to a power of two (0 = scaled to GOMAXPROCS)")
	cacheCapacity := flag.Int("cache-capacity", 0, "cache entry budget per tier (0 = 4096)")
	flag.Parse()

	if *artifactPath == "" {
		fmt.Fprintln(os.Stderr, "qcfe-serve: -artifact is required")
		flag.Usage()
		os.Exit(2)
	}
	parallel.SetDefaultWorkers(*workers)

	var copts *qcfe.CacheOptions
	if *cache {
		copts = &qcfe.CacheOptions{Shards: *cacheShards, Capacity: *cacheCapacity}
	}
	if err := run(*artifactPath, *addr, serve.Options{MaxBatch: *maxBatch, BatchWindow: *batchWindow}, copts); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(artifactPath, addr string, opts serve.Options, copts *qcfe.CacheOptions) error {
	f, err := os.Open(artifactPath)
	if err != nil {
		return err
	}
	est, err := qcfe.LoadEstimator(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("qcfe-serve: loaded %s estimator for %s (%d environments, trained %.1fs)\n",
		est.ModelName(), est.BenchmarkName(), len(est.Environments()), est.TrainSeconds())
	if copts != nil {
		c := qcfe.NewQueryCache(*copts)
		est.AttachCache(c)
		st := c.Stats()
		fmt.Printf("qcfe-serve: query cache on (%d shards, %d entries/tier, generation %x); /stats reports per-tier hits\n",
			st.Shards, st.Capacity, st.Generation)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(est, opts)
	go srv.Run(ctx)

	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
		// Request contexts descend from the signal context, so shutdown
		// cancels in-flight planning fan-outs too.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("qcfe-serve: listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("qcfe-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
