// Command qcfe-serve is the serving daemon of the train-once/serve-many
// flow: it loads a model artifact written by CostEstimator.Save (e.g.
// via `qcfe-bench -save`), and serves cost estimates over HTTP, turning
// the estimator stack's batched inference kernels into throughput by
// coalescing concurrent single-query requests into micro-batches.
//
// Usage:
//
//	qcfe-serve -artifact model.qcfe -addr :8080
//
// Endpoints:
//
//	POST /estimate        {"env":0,"sql":"SELECT ..."}  → {"ms":1.23}
//	POST /estimate_batch  {"env":0,"sqls":["...",...]}  → {"ms":[...]}
//	GET  /healthz                                       → model identity + artifact generation
//	GET  /stats                                         → serving counters
//	POST /swap            admin: stage/commit/rollback an artifact swap
//	GET  /generation      admin: serving + staged artifact generations
//
// The admin endpoints exist for qcfe-router's canary-gated fleet
// rollouts and are enabled by -admin-token (disabled with 403 when the
// flag is empty); -advertise names this replica in /healthz.
//
// A sharded query-fingerprint cache (on by default; -cache=false
// disables, -cache-shards/-cache-capacity size it) short-circuits warm
// repeats before the coalescing queue and reuses plan skeletons and
// featurizations across literal variants; /stats reports per-tier
// hit/miss/size counters.
//
// With -adapt the daemon also runs the online-adaptation loop
// (internal/online): served estimates are opportunistically replayed
// through the execution engine for ground-truth labels (every
// -label-every-th request; POST /shadow submits client-observed
// latencies directly), the rolling median q-error is tracked against
// -drift-threshold, and on drift the model is incrementally retrained
// on the last -retrain-window labeled queries and hot-swapped in — an
// atomic pointer swap: in-flight requests finish on the old model, new
// requests see the new one, and the new artifact generation invalidates
// the query cache without a lock. /stats gains a "drift" block.
//
// Predictions are bit-identical to the library's EstimateSQL on the same
// artifact, cached or not. SIGINT/SIGTERM trigger a graceful shutdown:
// in-flight requests finish, queued requests fail with a shutdown error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	qcfe "repro"
	"repro/internal/online"
	"repro/internal/parallel"
	"repro/internal/serve"
)

func main() {
	artifactPath := flag.String("artifact", "", "path to a model artifact written by CostEstimator.Save / qcfe-bench -save (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	maxBatch := flag.Int("max-batch", 64, "largest coalesced micro-batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "longest a request waits for batch companions")
	workers := flag.Int("workers", 0, "worker-pool size for the per-batch planning fan-out (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "enable the sharded query-fingerprint cache (template/feature/prediction tiers); hits are bit-identical to cold estimates")
	cacheShards := flag.Int("cache-shards", 0, "cache shard count per tier, rounded to a power of two (0 = scaled to GOMAXPROCS)")
	cacheCapacity := flag.Int("cache-capacity", 0, "cache entry budget per tier (0 = 4096)")
	adapt := flag.Bool("adapt", false, "enable drift-monitored online adaptation: label served traffic, retrain incrementally on drift, hot-swap atomically")
	driftThreshold := flag.Float64("drift-threshold", 2.0, "with -adapt: rolling median q-error above which the model is retrained")
	retrainWindow := flag.Int("retrain-window", 256, "with -adapt: sliding window of recent labeled queries retraining uses")
	retrainIters := flag.Int("retrain-iters", 60, "with -adapt: training iterations per incremental retrain")
	labelEvery := flag.Int("label-every", 8, "with -adapt: replay every Nth served estimate through the engine for a ground-truth label (1 = label everything)")
	adminToken := flag.String("admin-token", "", "enable the /swap and /generation admin endpoints, authenticated by this X-QCFE-Admin-Token value (empty = admin surface disabled); required for qcfe-router rollouts")
	advertise := flag.String("advertise", "", "replica identity echoed in /healthz (e.g. this host's URL in a qcfe-router fleet)")
	flag.Parse()

	if *artifactPath == "" {
		fmt.Fprintln(os.Stderr, "qcfe-serve: -artifact is required")
		flag.Usage()
		os.Exit(2)
	}
	parallel.SetDefaultWorkers(*workers)

	var copts *qcfe.CacheOptions
	if *cache {
		copts = &qcfe.CacheOptions{Shards: *cacheShards, Capacity: *cacheCapacity}
	}
	var aopts *online.Options
	if *adapt {
		aopts = &online.Options{
			Window:         *retrainWindow,
			DriftThreshold: *driftThreshold,
			RetrainIters:   *retrainIters,
			LabelEvery:     *labelEvery,
		}
	}
	sopts := serve.Options{
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		AdminToken:  *adminToken,
		Advertise:   *advertise,
	}
	if err := run(*artifactPath, *addr, sopts, copts, aopts); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(artifactPath, addr string, opts serve.Options, copts *qcfe.CacheOptions, aopts *online.Options) error {
	f, err := os.Open(artifactPath)
	if err != nil {
		return err
	}
	est, err := qcfe.LoadEstimator(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("qcfe-serve: loaded %s estimator for %s (%d environments, trained %.1fs)\n",
		est.ModelName(), est.BenchmarkName(), len(est.Environments()), est.TrainSeconds())
	if copts != nil {
		c := qcfe.NewQueryCache(*copts)
		est.AttachCache(c)
		st := c.Stats()
		fmt.Printf("qcfe-serve: query cache on (%d shards, %d entries/tier, generation %x); /stats reports per-tier hits\n",
			st.Shards, st.Capacity, st.Generation)
	}

	if opts.AdminToken != "" {
		fmt.Println("qcfe-serve: admin endpoints on (/swap, /generation; authenticate with X-QCFE-Admin-Token)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(est, opts)
	if aopts != nil {
		ad := online.New(est, *aopts, func(next *qcfe.CostEstimator) { srv.SwapEstimator(next) })
		srv.SetMonitor(ad)
		go ad.Run(ctx)
		fmt.Printf("qcfe-serve: online adaptation on (window %d, drift threshold %.2f, %d retrain iters, labeling every %d); POST /shadow submits ground truth\n",
			aopts.Window, aopts.DriftThreshold, aopts.RetrainIters, aopts.LabelEvery)
	}
	go srv.Run(ctx)

	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
		// Request contexts descend from the signal context, so shutdown
		// cancels in-flight planning fan-outs too.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("qcfe-serve: listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("qcfe-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
