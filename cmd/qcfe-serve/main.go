// Command qcfe-serve is the serving daemon of the train-once/serve-many
// flow: it loads a model artifact written by CostEstimator.Save (e.g.
// via `qcfe-bench -save`), and serves cost estimates over HTTP, turning
// the estimator stack's batched inference kernels into throughput by
// coalescing concurrent single-query requests into micro-batches.
//
// Usage:
//
//	qcfe-serve -artifact model.qcfe -addr :8080
//
// Endpoints:
//
//	POST /estimate        {"env":0,"sql":"SELECT ..."}  → {"ms":1.23}
//	POST /estimate_batch  {"env":0,"sqls":["...",...]}  → {"ms":[...]}
//	GET  /healthz                                       → model identity + artifact generation
//	GET  /stats                                         → serving counters
//	POST /swap            admin: stage/commit/rollback an artifact swap
//	GET  /generation      admin: serving + staged artifact generations
//	GET  /metrics                                       → Prometheus text exposition
//	GET  /trace/recent                                  → recent finished request traces
//	GET  /version                                       → build identification
//	GET  /debug/pprof/    admin: net/http/pprof profiles
//
// The admin endpoints exist for qcfe-router's canary-gated fleet
// rollouts and are enabled by -admin-token (disabled with 403 when the
// flag is empty); -advertise names this replica in /healthz.
//
// A sharded query-fingerprint cache (on by default; -cache=false
// disables, -cache-shards/-cache-capacity size it) short-circuits warm
// repeats before the coalescing queue and reuses plan skeletons and
// featurizations across literal variants; /stats reports per-tier
// hit/miss/size counters.
//
// With -adapt the daemon also runs the online-adaptation loop
// (internal/online): served estimates are opportunistically replayed
// through the execution engine for ground-truth labels (every
// -label-every-th request; POST /shadow submits client-observed
// latencies directly), the rolling median q-error is tracked against
// -drift-threshold, and on drift the model is incrementally retrained
// on the last -retrain-window labeled queries and hot-swapped in — an
// atomic pointer swap: in-flight requests finish on the old model, new
// requests see the new one, and the new artifact generation invalidates
// the query cache without a lock. /stats gains a "drift" block.
//
// Predictions are bit-identical to the library's EstimateSQL on the same
// artifact, cached or not. SIGINT/SIGTERM trigger a graceful shutdown:
// in-flight requests finish, queued requests fail with a shutdown error.
//
// # Multi-tenant mode
//
// With -tenants the daemon hosts several artifacts in one process
// (internal/tenant) instead of one:
//
//	qcfe-serve -tenants alpha=a.qcfe,beta=b.qcfe -tenant-weights alpha=3,beta=1 -max-inflight 32
//
// Each tenant gets its own coalescing server, its own tenant-namespaced
// query cache, and (with -adapt) its own drift monitor; requests name
// their tenant via the X-QCFE-Tenant header or the body's "tenant"
// field. Admission divides -max-inflight NN slots into weighted
// fair-share floors (-tenant-weights; default 1 each), and under
// overload a tenant's requests walk the degradation ladder: warm-cache
// hits always serve, then the analytic fallback answers with
// "degraded":true, then 429 + Retry-After. /stats gains a per-tenant
// block with queue depth and shed/degrade counters. -artifact and
// -tenants are mutually exclusive.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	qcfe "repro"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/tenant"
)

func main() {
	artifactPath := flag.String("artifact", "", "path to a model artifact written by CostEstimator.Save / qcfe-bench -save (required unless -tenants)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	maxBatch := flag.Int("max-batch", 64, "largest coalesced micro-batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "longest a request waits for batch companions")
	workers := flag.Int("workers", 0, "worker-pool size for the per-batch planning fan-out (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "enable the sharded query-fingerprint cache (template/feature/prediction tiers); hits are bit-identical to cold estimates")
	cacheShards := flag.Int("cache-shards", 0, "cache shard count per tier, rounded to a power of two (0 = scaled to GOMAXPROCS)")
	cacheCapacity := flag.Int("cache-capacity", 0, "cache entry budget per tier (0 = 4096)")
	adapt := flag.Bool("adapt", false, "enable drift-monitored online adaptation: label served traffic, retrain incrementally on drift, hot-swap atomically")
	driftThreshold := flag.Float64("drift-threshold", 2.0, "with -adapt: rolling median q-error above which the model is retrained")
	retrainWindow := flag.Int("retrain-window", 256, "with -adapt: sliding window of recent labeled queries retraining uses")
	retrainIters := flag.Int("retrain-iters", 60, "with -adapt: training iterations per incremental retrain")
	labelEvery := flag.Int("label-every", 8, "with -adapt: replay every Nth served estimate through the engine for a ground-truth label (1 = label everything)")
	adminToken := flag.String("admin-token", "", "enable the /swap and /generation admin endpoints, authenticated by this X-QCFE-Admin-Token value (empty = admin surface disabled); required for qcfe-router rollouts")
	advertise := flag.String("advertise", "", "replica identity echoed in /healthz (e.g. this host's URL in a qcfe-router fleet)")
	tenantsSpec := flag.String("tenants", "", "multi-tenant mode: comma-separated name=artifact pairs (e.g. alpha=a.qcfe,beta=b.qcfe); mutually exclusive with -artifact")
	tenantWeights := flag.String("tenant-weights", "", "with -tenants: comma-separated name=weight fair-share weights (unlisted tenants weigh 1)")
	maxInflight := flag.Int("max-inflight", 0, "with -tenants: NN-path inflight-slot budget divided into weighted per-tenant floors (0 = 4×GOMAXPROCS)")
	pipelineDepth := flag.Int("pipeline-depth", 0, "run the miss path as bounded concurrent stages (gather/featurize/predict/reply) with this exchange-channel capacity; 0 = serial coalescer; results are bit-identical either way")
	featurizeWorkers := flag.Int("featurize-workers", 0, "with -pipeline-depth: concurrent parse/plan/featurize stage workers (0 = 2)")
	predictWorkers := flag.Int("predict-workers", 0, "with -pipeline-depth: concurrent batched-inference stage workers (0 = 1)")
	slowQuery := flag.Duration("slow-query-threshold", 0, "log every request slower than this as one structured JSON line on stderr, with its trace ID and stage spans (0 = off)")
	traceRing := flag.Int("trace-ring", 0, "finished-request traces retained for GET /trace/recent (0 = 256)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *showVersion {
		printVersion("qcfe-serve")
		return
	}
	if (*artifactPath == "") == (*tenantsSpec == "") {
		fmt.Fprintln(os.Stderr, "qcfe-serve: exactly one of -artifact or -tenants is required")
		flag.Usage()
		os.Exit(2)
	}
	parallel.SetDefaultWorkers(*workers)

	var copts *qcfe.CacheOptions
	if *cache {
		copts = &qcfe.CacheOptions{Shards: *cacheShards, Capacity: *cacheCapacity}
	}
	var aopts *online.Options
	if *adapt {
		aopts = &online.Options{
			Window:         *retrainWindow,
			DriftThreshold: *driftThreshold,
			RetrainIters:   *retrainIters,
			LabelEvery:     *labelEvery,
		}
	}
	sopts := serve.Options{
		MaxBatch:           *maxBatch,
		BatchWindow:        *batchWindow,
		AdminToken:         *adminToken,
		Advertise:          *advertise,
		SlowQueryThreshold: *slowQuery,
		TraceRing:          *traceRing,
		PipelineDepth:      *pipelineDepth,
		FeaturizeWorkers:   *featurizeWorkers,
		PredictWorkers:     *predictWorkers,
	}
	var err error
	if *tenantsSpec != "" {
		err = runMulti(*tenantsSpec, *tenantWeights, *maxInflight, *addr, sopts, copts, aopts)
	} else {
		err = run(*artifactPath, *addr, sopts, copts, aopts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-serve: %v\n", err)
		os.Exit(1)
	}
}

// runMulti is the -tenants boot path: load every named artifact, build
// the fair-share registry, wire an independent drift monitor per tenant
// when -adapt is on, and serve the registry's handler.
func runMulti(specs, weightsSpec string, maxInflight int, addr string, opts serve.Options, copts *qcfe.CacheOptions, aopts *online.Options) error {
	weights, err := parseWeights(weightsSpec)
	if err != nil {
		return err
	}
	var cfgs []tenant.Config
	for _, pair := range strings.Split(specs, ",") {
		name, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -tenants entry %q (want name=artifact)", pair)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		est, err := qcfe.LoadEstimator(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("tenant %q: %w", name, err)
		}
		fmt.Printf("qcfe-serve: tenant %q: loaded %s estimator for %s (%d environments)\n",
			name, est.ModelName(), est.BenchmarkName(), len(est.Environments()))
		cfgs = append(cfgs, tenant.Config{Name: name, Est: est, Weight: weights[name]})
		delete(weights, name)
	}
	for name := range weights {
		return fmt.Errorf("-tenant-weights names unknown tenant %q", name)
	}

	reg, err := tenant.New(tenant.Options{
		Serve:       opts,
		MaxInflight: maxInflight,
		Cache:       copts,
	}, cfgs)
	if err != nil {
		return err
	}
	fmt.Printf("qcfe-serve: multi-tenant mode: %d tenants %v; name requests with the %s header or \"tenant\" field\n",
		len(reg.Names()), reg.Names(), serve.TenantHeader)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if aopts != nil {
		for _, tc := range cfgs {
			t, err := reg.Tenant(tc.Name)
			if err != nil {
				return err
			}
			srv := t.Server()
			ad := online.New(tc.Est, *aopts, func(next *qcfe.CostEstimator) { srv.SwapEstimator(next) })
			srv.SetMonitor(ad)
			go ad.Run(ctx)
		}
		fmt.Printf("qcfe-serve: online adaptation on per tenant (window %d, drift threshold %.2f)\n",
			aopts.Window, aopts.DriftThreshold)
	}
	go reg.Run(ctx)

	return serveHTTP(ctx, addr, reg.Handler())
}

// printVersion reports the binary's build identity — the same fields
// GET /version serves.
func printVersion(name string) {
	b := obs.Build()
	fmt.Printf("%s %s (%s", name, orDev(b.Version), b.GoVersion)
	if b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Printf(", rev %s", rev)
		if b.VCSModified {
			fmt.Print("+dirty")
		}
	}
	fmt.Println(")")
}

func orDev(v string) string {
	if v == "" || v == "(devel)" {
		return "devel"
	}
	return v
}

// parseWeights parses "name=N,name=N" into a map.
func parseWeights(spec string) (map[string]int, error) {
	weights := make(map[string]int)
	if spec == "" {
		return weights, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want name=weight)", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -tenant-weights entry %q: weight must be a positive integer", pair)
		}
		weights[name] = w
	}
	return weights, nil
}

func run(artifactPath, addr string, opts serve.Options, copts *qcfe.CacheOptions, aopts *online.Options) error {
	f, err := os.Open(artifactPath)
	if err != nil {
		return err
	}
	est, err := qcfe.LoadEstimator(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("qcfe-serve: loaded %s estimator for %s (%d environments, trained %.1fs)\n",
		est.ModelName(), est.BenchmarkName(), len(est.Environments()), est.TrainSeconds())
	if copts != nil {
		c := qcfe.NewQueryCache(*copts)
		est.AttachCache(c)
		st := c.Stats()
		fmt.Printf("qcfe-serve: query cache on (%d shards, %d entries/tier, generation %x); /stats reports per-tier hits\n",
			st.Shards, st.Capacity, st.Generation)
	}

	if opts.AdminToken != "" {
		fmt.Println("qcfe-serve: admin endpoints on (/swap, /generation; authenticate with X-QCFE-Admin-Token)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(est, opts)
	if aopts != nil {
		ad := online.New(est, *aopts, func(next *qcfe.CostEstimator) { srv.SwapEstimator(next) })
		srv.SetMonitor(ad)
		go ad.Run(ctx)
		fmt.Printf("qcfe-serve: online adaptation on (window %d, drift threshold %.2f, %d retrain iters, labeling every %d); POST /shadow submits ground truth\n",
			aopts.Window, aopts.DriftThreshold, aopts.RetrainIters, aopts.LabelEvery)
	}
	go srv.Run(ctx)

	return serveHTTP(ctx, addr, srv.Handler())
}

// serveHTTP runs the HTTP front end until ctx (the signal context) is
// cancelled, then shuts down gracefully.
func serveHTTP(ctx context.Context, addr string, h http.Handler) error {
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: h,
		// Request contexts descend from the signal context, so shutdown
		// cancels in-flight planning fan-outs too.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("qcfe-serve: listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("qcfe-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
