// Command qcfe-datagen materializes a benchmark dataset and prints its
// physical summary: tables, row counts, page counts, indexes, and
// per-column statistics — a quick way to inspect the substrate the
// experiments run on.
//
// Usage:
//
//	qcfe-datagen -benchmark tpch
//	qcfe-datagen -benchmark imdb -table title
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/datagen"
)

func main() {
	benchmark := flag.String("benchmark", "tpch", "benchmark: tpch|sysbench|imdb")
	table := flag.String("table", "", "restrict output to one table")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()

	ds, err := datagen.Build(*benchmark, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchmark %s (seed %d)\n\n", ds.Name, *seed)
	names := ds.Schema.TableNames()
	for _, name := range names {
		if *table != "" && name != *table {
			continue
		}
		t := ds.Schema.Table(name)
		ts := ds.Stats.Table(name)
		fmt.Printf("table %s: %d rows, %d pages, %d B/row\n", name, ts.RowCount, ts.Pages, t.RowWidth())
		for _, c := range t.Columns {
			cs := ts.Columns[c.Name]
			fmt.Printf("  %-20s %-7s ndv=%-7d null=%.2f", c.Name, c.Type, cs.DistinctVals, cs.NullFrac)
			if len(cs.HistBounds) > 0 {
				fmt.Printf(" range=[%d,%d]", cs.Min, cs.Max)
			}
			fmt.Println()
		}
		var idx []string
		for _, def := range ds.Schema.Indexes {
			if def.Table == name {
				idx = append(idx, fmt.Sprintf("%s(%s)", def.Name, def.Column))
			}
		}
		sort.Strings(idx)
		if len(idx) > 0 {
			fmt.Printf("  indexes: %v\n", idx)
		}
		fmt.Println()
	}
}
