// Command qcfe-promcheck validates a Prometheus text-exposition
// document (text format 0.0.4) against the same in-tree grammar and
// histogram-invariant checker the obs package's golden tests use
// (obs.ValidateExposition). The CI smoke jobs pipe each daemon's
// /metrics body through it, so a malformed scrape fails the build with
// the offending line instead of failing silently in a collector later.
//
// Usage:
//
//	qcfe-promcheck [file]    # no file: read stdin
//
// Exit status 0 means the document parses and every histogram satisfies
// the _bucket/_sum/_count invariants; anything else prints the first
// violation and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: qcfe-promcheck [file]  (reads stdin without a file)")
		flag.PrintDefaults()
	}
	flag.Parse()
	var (
		data []byte
		err  error
		name = "stdin"
	)
	switch flag.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		name = flag.Arg(0)
		data, err = os.ReadFile(name)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-promcheck: %v\n", err)
		os.Exit(1)
	}
	if err := obs.ValidateExposition(data); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-promcheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("qcfe-promcheck: %s: valid exposition\n", name)
}
