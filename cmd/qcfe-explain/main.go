// Command qcfe-explain plans and executes one SQL query against a
// benchmark dataset and prints an EXPLAIN-ANALYZE-style report: the
// physical plan with estimates and actuals, the simulated latency, the
// PostgreSQL-style analytic estimate, and the feature-snapshot formula
// estimate per operator.
//
// Usage:
//
//	qcfe-explain -benchmark tpch -sql "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24"
//	qcfe-explain -benchmark sysbench -env 3 -sql "SELECT * FROM sbtest1 WHERE id = 100"
//
// With -cache-stats it also prints the query's fingerprint, literal
// signature, and tier keys in the query cache (internal/qcache), traces
// which tier each kind of repeat would hit, and verifies that the
// template tier's skeleton rebind re-plans to the executed plan exactly.
package main

import (
	"flag"
	"fmt"
	"os"

	qcfe "repro"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/planner"
	"repro/internal/qcache"
	"repro/internal/sqlparse"
)

func main() {
	benchmark := flag.String("benchmark", "tpch", "benchmark: tpch|sysbench|imdb")
	sql := flag.String("sql", "", "SQL query to explain (required)")
	envID := flag.Int("env", -1, "random environment id (-1 = default environment)")
	seed := flag.Int64("seed", 1, "dataset seed")
	cacheStats := flag.Bool("cache-stats", false, "print the query's fingerprint and tier-by-tier query-cache hit path")
	flag.Parse()
	if *sql == "" {
		fmt.Fprintln(os.Stderr, "qcfe-explain: -sql is required")
		os.Exit(2)
	}

	bench, err := qcfe.OpenBenchmark(*benchmark, *seed)
	if err != nil {
		fail(err)
	}
	env := qcfe.DefaultEnvironment()
	if *envID >= 0 {
		envs := dbenv.SampleSet(*envID+1, *seed)
		env = envs[*envID]
	}

	res, err := bench.Execute(env, *sql)
	if err != nil {
		fail(err)
	}
	fmt.Printf("environment: %s\n", env)
	fmt.Printf("query: %s\n\n", *sql)
	fmt.Print(res.Plan.Explain())
	fmt.Printf("\nrows returned:        %d\n", res.Rows)
	fmt.Printf("simulated latency:    %.3f ms\n", res.Ms)
	fmt.Printf("pg-style estimate:    %.3f ms\n", bench.AnalyticEstimateMs(res.Plan))
	if *cacheStats {
		if err := printCacheStats(bench, env, *sql); err != nil {
			fail(err)
		}
	}
}

// printCacheStats traces the query through the cache's split front-half
// steps — Fingerprint, skeleton Clone/BindLiterals + PlanResolved,
// Featurize — without duplicating any plan walking of its own.
func printCacheStats(bench *qcfe.Benchmark, env *qcfe.Environment, sql string) error {
	fp, lits, err := sqlparse.Fingerprint(sql)
	if err != nil {
		return fmt.Errorf("fingerprint: %w", err)
	}
	sig := sqlparse.Signature(lits)
	fmt.Printf("\nquery cache (internal/qcache):\n")
	fmt.Printf("  fingerprint:        %s\n", fp)
	fmt.Printf("  literals:           %d", len(lits))
	for _, l := range lits {
		if l.Str {
			fmt.Printf("  '%s'", l.Raw)
		} else {
			fmt.Printf("  %s", l.Raw)
		}
	}
	fmt.Println()
	fmt.Printf("  tier keys:\n")
	fmt.Printf("    prediction:       %q\n", qcache.PredictionKey(env.ID, sql))
	fmt.Printf("    feature:          %q\n", qcache.FeatureKey(env.ID, fp, sig))
	fmt.Printf("    template:         %q\n", qcache.TemplateKey(env.ID, fp))

	// The split steps, exactly as a template-tier hit runs them: parse
	// once to build the skeleton, then clone+bind+PlanResolved.
	ds := bench.Dataset()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	pl := planner.New(ds.Schema, ds.Stats, env.Knobs)
	cold, err := pl.Plan(q) // resolves q in place → q is the skeleton
	if err != nil {
		return err
	}
	rebind := q.Clone()
	if err := rebind.BindLiterals(lits); err != nil {
		return fmt.Errorf("rebind: %w", err)
	}
	warm, err := pl.PlanResolved(rebind)
	if err != nil {
		return fmt.Errorf("replan from skeleton: %w", err)
	}
	match := "bit-identical"
	if warm.Explain() != cold.Explain() {
		match = "MISMATCH (cache would fall back to full planning)"
	}
	// Dimensions from the general encoding only — qcfe-explain has no
	// trained artifact; an attached estimator's featurizer adds the
	// snapshot block and applies its reduction mask on top.
	f := &encoding.Featurizer{Enc: encoding.New(ds.Schema)}
	fplan := f.Featurize(cold)
	fmt.Printf("  hit path:\n")
	fmt.Printf("    exact repeat:     prediction tier (skips parse+plan+featurize+inference)\n")
	fmt.Printf("    same semantics:   feature tier (cached %d nodes x %d general-encoding features; trained estimators add the snapshot block minus the reduction mask)\n",
		fplan.NumNodes(), f.Dim())
	fmt.Printf("    literal variant:  template tier (skeleton %d nodes; rebind %d literals, replan: %s)\n",
		cold.CountNodes(), len(lits), match)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "qcfe-explain: %v\n", err)
	os.Exit(1)
}
