// Command qcfe-explain plans and executes one SQL query against a
// benchmark dataset and prints an EXPLAIN-ANALYZE-style report: the
// physical plan with estimates and actuals, the simulated latency, the
// PostgreSQL-style analytic estimate, and the feature-snapshot formula
// estimate per operator.
//
// Usage:
//
//	qcfe-explain -benchmark tpch -sql "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24"
//	qcfe-explain -benchmark sysbench -env 3 -sql "SELECT * FROM sbtest1 WHERE id = 100"
package main

import (
	"flag"
	"fmt"
	"os"

	qcfe "repro"
	"repro/internal/dbenv"
)

func main() {
	benchmark := flag.String("benchmark", "tpch", "benchmark: tpch|sysbench|imdb")
	sql := flag.String("sql", "", "SQL query to explain (required)")
	envID := flag.Int("env", -1, "random environment id (-1 = default environment)")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()
	if *sql == "" {
		fmt.Fprintln(os.Stderr, "qcfe-explain: -sql is required")
		os.Exit(2)
	}

	bench, err := qcfe.OpenBenchmark(*benchmark, *seed)
	if err != nil {
		fail(err)
	}
	env := qcfe.DefaultEnvironment()
	if *envID >= 0 {
		envs := dbenv.SampleSet(*envID+1, *seed)
		env = envs[*envID]
	}

	res, err := bench.Execute(env, *sql)
	if err != nil {
		fail(err)
	}
	fmt.Printf("environment: %s\n", env)
	fmt.Printf("query: %s\n\n", *sql)
	fmt.Print(res.Plan.Explain())
	fmt.Printf("\nrows returned:        %d\n", res.Rows)
	fmt.Printf("simulated latency:    %.3f ms\n", res.Ms)
	fmt.Printf("pg-style estimate:    %.3f ms\n", bench.AnalyticEstimateMs(res.Plan))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "qcfe-explain: %v\n", err)
	os.Exit(1)
}
