// Command qcfe-bench runs the paper's experiments and prints the same rows
// and series the paper's tables and figures report.
//
// Usage:
//
//	qcfe-bench -exp table4 -benchmark tpch -size quick
//	qcfe-bench -exp all -size med -workers 8
//
// Experiments: fig1, table4, fig5, fig6, fig7, table5, table6, table7,
// fig8, all. Sizes: quick (seconds), med (minutes), full (the paper's
// scales; tens of minutes). Independent experiments and the labeling
// pipeline underneath them fan out over the worker pool (see -workers);
// every number printed is identical at any worker count, though with
// -exp all the experiment *blocks* appear in completion order, which may
// vary between runs when workers > 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1|table4|fig5|fig6|fig7|table5|table6|table7|fig8|all")
	benchmark := flag.String("benchmark", "", "benchmark: tpch|sysbench|imdb (default: all applicable)")
	size := flag.String("size", "med", "grid size: quick|med|full")
	workers := flag.Int("workers", 0, "per-fan-out worker cap for parallel labeling and experiments; nested stages each use up to this many goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	parallel.SetDefaultWorkers(*workers)

	var params experiments.Params
	switch *size {
	case "quick":
		params = experiments.QuickParams()
	case "med":
		params = MedParams()
	case "full":
		params = experiments.DefaultParams()
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *size)
		os.Exit(2)
	}
	suite := experiments.NewSuite(params, os.Stdout)

	benchmarks := []string{"tpch", "sysbench", "imdb"}
	if *benchmark != "" {
		benchmarks = []string{*benchmark}
	}
	if err := suite.RunAll(*exp, benchmarks); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
		os.Exit(1)
	}
}

// MedParams is a middle grid: every experiment, reduced pools.
func MedParams() experiments.Params {
	return experiments.Params{
		NumEnvs:     10,
		PerEnv:      map[string]int{"tpch": 400, "sysbench": 500, "imdb": 300},
		Scales:      []int{1000, 2000, 4000},
		Iters:       map[string]int{"tpch": 600, "sysbench": 150, "imdb": 600},
		Fig1Queries: 500,
		Seed:        1,
	}
}
