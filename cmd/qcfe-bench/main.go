// Command qcfe-bench runs the paper's experiments and prints the same rows
// and series the paper's tables and figures report.
//
// Usage:
//
//	qcfe-bench -exp table4 -benchmark tpch -size quick
//	qcfe-bench -exp all -size med
//
// Experiments: fig1, table4, fig5, fig6, fig7, table5, table6, table7,
// fig8, all. Sizes: quick (seconds), med (minutes), full (the paper's
// scales; tens of minutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1|table4|fig5|fig6|fig7|table5|table6|table7|fig8|all")
	benchmark := flag.String("benchmark", "", "benchmark: tpch|sysbench|imdb (default: all applicable)")
	size := flag.String("size", "med", "grid size: quick|med|full")
	flag.Parse()

	var params experiments.Params
	switch *size {
	case "quick":
		params = experiments.QuickParams()
	case "med":
		params = MedParams()
	case "full":
		params = experiments.DefaultParams()
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *size)
		os.Exit(2)
	}
	suite := experiments.NewSuite(params, os.Stdout)

	benchmarks := []string{"tpch", "sysbench", "imdb"}
	if *benchmark != "" {
		benchmarks = []string{*benchmark}
	}
	if err := run(suite, *exp, benchmarks); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
		os.Exit(1)
	}
}

// MedParams is a middle grid: every experiment, reduced pools.
func MedParams() experiments.Params {
	return experiments.Params{
		NumEnvs: 10,
		PerEnv:  map[string]int{"tpch": 400, "sysbench": 500, "imdb": 300},
		Scales:  []int{1000, 2000, 4000},
		Iters:   map[string]int{"tpch": 600, "sysbench": 150, "imdb": 600},
		Seed:    1,
	}
}

func run(s *experiments.Suite, exp string, benchmarks []string) error {
	do := func(id string) bool { return exp == id || exp == "all" }
	if do("fig1") {
		if _, err := s.Figure1(); err != nil {
			return err
		}
	}
	for _, b := range benchmarks {
		if do("table4") {
			if _, err := s.Table4(b); err != nil {
				return err
			}
		}
		if do("fig5") {
			if _, err := s.Figure5(b); err != nil {
				return err
			}
		}
		if do("fig6") {
			if _, err := s.Figure6(b); err != nil {
				return err
			}
		}
	}
	if do("fig7") {
		if _, err := s.Figure7(); err != nil {
			return err
		}
	}
	if do("table5") {
		for _, b := range benchmarks {
			if b == "sysbench" {
				continue // the paper runs Table V on TPC-H and job-light only
			}
			scales := []int{1, 2, 3, 4}
			if b == "imdb" {
				scales = []int{2, 4, 6, 8}
			}
			if _, err := s.Table5(b, scales); err != nil {
				return err
			}
		}
	}
	if do("table6") {
		if _, err := s.Table6([]int{200, 250, 300, 400, 500}); err != nil {
			return err
		}
	}
	for _, b := range benchmarks {
		if b == "sysbench" {
			continue // §V-E evaluates transfer on TPC-H and job-light
		}
		if do("table7") {
			if _, err := s.Table7(b); err != nil {
				return err
			}
		}
		if do("fig8") {
			if _, err := s.Figure8(b); err != nil {
				return err
			}
		}
	}
	return nil
}
