// Command qcfe-bench runs the paper's experiments and prints the same rows
// and series the paper's tables and figures report.
//
// Usage:
//
//	qcfe-bench -exp table4 -benchmark tpch -size quick
//	qcfe-bench -exp all -size med -workers 8
//
// Experiments: fig1, table4, fig5, fig6, fig7, table5, table6, table7,
// fig8, all. Sizes: quick (seconds), med (minutes), full (the paper's
// scales; tens of minutes). Independent experiments and the labeling
// pipeline underneath them fan out over the worker pool (see -workers);
// every number printed is identical at any worker count, though with
// -exp all the experiment *blocks* appear in completion order, which may
// vary between runs when workers > 1.
//
// With -micro the command instead runs the estimator-stack
// microbenchmarks (train iters/sec, predictions/sec, batched vs scalar,
// serve-throughput, query-cache hit/miss, estimator hot-swap latency,
// routed fleet fan-out) on the quick grid and writes the
// machine-readable BENCH_PR7.json rows. This is the CI
// benchmark-regression pipeline:
//
//	qcfe-bench -micro -out BENCH_PR7.json -baseline BENCH_PR7.json
//
// exits non-zero when a gated predictions/sec row regresses more than
// -tolerance against the (machine-normalized) baseline, when the batched
// training iteration fails the -min-train-speedup floor against the
// retained scalar reference path, or when a warm cache-served estimate
// fails the -min-warm-speedup floor against the uncached
// serve/estimate-coalesced row from the same run — both before
// (serve/estimate-warm) and after (serve/estimate-warm-postswap) an
// estimator hot swap, so a swap that silently chilled the cache fails
// the gate. The routed path carries the same floor: router/estimate-warm
// and router/estimate-warm-postrollout (warm again after a full canary
// rollout) must each beat the uncached router/fanout-batch row of the
// same run. The warm rows are additionally held to the -max-warm-allocs
// allocs/op ceiling (default 0: a warm hit is a lock-free snapshot
// probe and must not allocate), and the baseline comparison fails on
// any allocs/op increase over those rows — allocation counts are
// machine-independent, so there is no tolerance.
//
// With -save the command instead trains one pipeline and writes the
// estimator as a persistent artifact; with -load it reads an artifact
// back and either evaluates it on a freshly collected test pool or (with
// -estimate) prices a semicolon-separated query list, printing the same
// {"ms":[...]} JSON the qcfe-serve /estimate_batch endpoint returns —
// the CI smoke test diffs the two to assert server/library parity:
//
//	qcfe-bench -save model.qcfe -benchmark sysbench -model mscn
//	qcfe-bench -load model.qcfe
//	qcfe-bench -load model.qcfe -env 0 -estimate 'SELECT ...;SELECT ...'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	qcfe "repro"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1|table4|fig5|fig6|fig7|table5|table6|table7|fig8|all")
	benchmark := flag.String("benchmark", "", "benchmark: tpch|sysbench|imdb (default: all applicable; -save/-load default: sysbench)")
	size := flag.String("size", "med", "grid size: quick|med|full")
	workers := flag.Int("workers", 0, "per-fan-out worker cap for parallel labeling and experiments; nested stages each use up to this many goroutines (0 = GOMAXPROCS)")
	micro := flag.Bool("micro", false, "run the estimator microbenchmarks and emit BENCH_PR7.json rows instead of the experiment suite")
	out := flag.String("out", "BENCH_PR7.json", "with -micro: output path for the benchmark rows")
	baseline := flag.String("baseline", "", "with -micro: baseline BENCH_PR7.json to gate against (empty = no gate)")
	tolerance := flag.Float64("tolerance", 0.20, "with -micro -baseline: maximum allowed predictions/sec regression")
	minSpeedup := flag.Float64("min-train-speedup", 1.7, "with -micro: minimum batched/scalar training-iteration speedup on the mscn pair (0 disables; ~2.1-2.3x measured, floor set below for run-to-run noise)")
	minWarmSpeedup := flag.Float64("min-warm-speedup", 5.0, "with -micro: minimum warm cache-hit serving speedup over uncached coalesced serving, same-run rows so machine speed cancels (0 disables; orders of magnitude measured)")
	maxWarmAllocs := flag.Int64("max-warm-allocs", 0, "with -micro: maximum allocs/op allowed on the warm cache-hit rows (qcache/hit, serve/estimate-warm, serve/estimate-warm-postswap); negative disables (0 enforced by default — the warm path is allocation-free)")
	maxHistRecordNs := flag.Float64("max-hist-record-ns", 50, "with -micro: ceiling on the obs/histogram-record row's ns/op — the per-sample cost observability adds to every hot path (0 disables; two uncontended atomic adds measure ~5-10ns)")
	minMissSpeedup := flag.Float64("min-miss-speedup", 1.5, "with -micro: minimum staged-pipeline speedup over the serial coalescer on the streaming-miss rows, same-run so machine speed cancels (0 disables; skipped with a notice when GOMAXPROCS < 2 — single-core machines have no second core for stages to overlap on)")
	savePath := flag.String("save", "", "train one pipeline and write the estimator artifact to this path")
	loadPath := flag.String("load", "", "load an estimator artifact and evaluate it (or price -estimate queries)")
	model := flag.String("model", "mscn", "with -save: estimator to train (mscn|qppnet|analytic)")
	envCount := flag.Int("envs", 3, "with -save: number of sampled environments")
	perEnv := flag.Int("per-env", 120, "with -save: labeled queries per environment")
	trainIters := flag.Int("train-iters", 120, "with -save: training iterations")
	seed := flag.Int64("seed", 1, "with -save/-load: benchmark + pipeline seed")
	envID := flag.Int("env", 0, "with -load -estimate: environment ID to price under")
	estimate := flag.String("estimate", "", "with -load: semicolon-separated SQL list to price; prints {\"ms\":[...]}")
	flag.Parse()

	parallel.SetDefaultWorkers(*workers)

	switch {
	case *savePath != "" && *loadPath != "":
		fmt.Fprintln(os.Stderr, "qcfe-bench: -save and -load are mutually exclusive")
		os.Exit(2)
	case *savePath != "":
		if err := runSave(*savePath, benchOrDefault(*benchmark), *model, *envCount, *perEnv, *trainIters, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
			os.Exit(1)
		}
		return
	case *loadPath != "":
		if err := runLoad(*loadPath, *envID, *estimate, *perEnv, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *micro {
		if err := runMicro(*out, *baseline, *tolerance, *minSpeedup, *minWarmSpeedup, *minMissSpeedup, *maxWarmAllocs, *maxHistRecordNs); err != nil {
			fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var params experiments.Params
	switch *size {
	case "quick":
		params = experiments.QuickParams()
	case "med":
		params = MedParams()
	case "full":
		params = experiments.DefaultParams()
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *size)
		os.Exit(2)
	}
	suite := experiments.NewSuite(params, os.Stdout)

	benchmarks := []string{"tpch", "sysbench", "imdb"}
	if *benchmark != "" {
		benchmarks = []string{*benchmark}
	}
	if err := suite.RunAll(*exp, benchmarks); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
		os.Exit(1)
	}
}

// benchOrDefault resolves the -benchmark flag for the single-benchmark
// save/load modes.
func benchOrDefault(name string) string {
	if name == "" {
		return "sysbench"
	}
	return name
}

// runSave trains one pipeline end to end (collect → fit) and writes the
// estimator artifact — the "train once" half of the train-once/serve-many
// flow. The printed summary reports what went into the artifact.
func runSave(path, benchmark, model string, envCount, perEnv, trainIters int, seed int64) error {
	b, err := qcfe.OpenBenchmark(benchmark, seed)
	if err != nil {
		return err
	}
	envs := qcfe.RandomEnvironments(envCount, seed)
	pool, err := b.CollectWorkload(envs, perEnv, seed)
	if err != nil {
		return err
	}
	train, test := pool.Split(0.8)
	est, err := qcfe.NewPipeline(model, qcfe.WithTrainIters(trainIters), qcfe.WithSeed(seed)).Fit(b, envs, train)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := est.Save(f); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	sum := est.Evaluate(test)
	fmt.Printf("saved %s estimator for %s to %s (%d bytes)\n", model, benchmark, path, info.Size())
	fmt.Printf("trained %.1fs on %d samples across %d environments; test mean q-error %.2f\n",
		est.TrainSeconds(), len(train), envCount, sum.Mean)
	return nil
}

// runLoad reads an artifact back. With -estimate it prices the
// semicolon-separated query list under -env and prints the same
// {"ms":[...]} JSON body the qcfe-serve /estimate_batch endpoint
// returns (the CI smoke test diffs the two). Without it, it re-collects
// a labeled pool over the artifact's environments and reports the loaded
// model's test metrics.
func runLoad(path string, envID int, estimate string, perEnv int, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	est, err := qcfe.LoadEstimator(f)
	f.Close()
	if err != nil {
		return err
	}
	if estimate != "" {
		var env *qcfe.Environment
		for _, e := range est.Environments() {
			if e.ID == envID {
				env = e
				break
			}
		}
		if env == nil {
			return fmt.Errorf("artifact has no environment %d", envID)
		}
		var sqls []string
		for _, q := range strings.Split(estimate, ";") {
			if q = strings.TrimSpace(q); q != "" {
				sqls = append(sqls, q)
			}
		}
		ms, err := est.EstimateSQLBatch(env, sqls)
		if err != nil {
			return err
		}
		if ms == nil {
			ms = []float64{} // "ms":[] like the server, never "ms":null
		}
		// Mirror serve.BatchResponse exactly, down to the trailing newline
		// of json.Encoder, so `diff` against a curl of /estimate_batch is
		// a byte-level parity check.
		return json.NewEncoder(os.Stdout).Encode(struct {
			Ms []float64 `json:"ms"`
		}{Ms: ms})
	}
	fmt.Printf("loaded %s estimator for %s (%d environments, trained %.1fs)\n",
		est.ModelName(), est.BenchmarkName(), len(est.Environments()), est.TrainSeconds())
	pool, err := est.Benchmark().CollectWorkload(est.Environments(), perEnv, seed)
	if err != nil {
		return err
	}
	_, test := pool.Split(0.8)
	sum := est.Evaluate(test)
	fmt.Printf("test mean q-error %.2f (median %.2f, p90 %.2f) on %d samples\n",
		sum.Mean, sum.Median, sum.P90, len(test))
	return nil
}

// runMicro runs the microbenchmarks, writes the JSON rows, and applies
// the CI gates: the training-iteration speedup floor, the warm
// cache-hit serving speedup floor (each comparing two rows of the same
// run, so machine speed cancels exactly), the warm-row allocs/op
// ceiling (a count, no normalization needed), and, when a baseline is
// given, the predictions/sec regression tolerance plus the no-new-allocs
// comparison on the same warm rows. The histogram-record ceiling bounds
// what one observability sample may cost the hot paths, and the
// streaming-miss floor requires the staged pipeline to beat the serial
// coalescer on multi-core machines (GOMAXPROCS=1 skips it: stages need
// a second core to overlap on).
func runMicro(out, baseline string, tolerance, minSpeedup, minWarmSpeedup, minMissSpeedup float64, maxWarmAllocs int64, maxHistRecordNs float64) error {
	rows, err := bench.Run()
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(out, rows); err != nil {
		return err
	}
	fmt.Printf("%-24s %14s %14s %10s\n", "benchmark", "ns/op", "ops/sec", "allocs/op")
	for _, r := range rows {
		fmt.Printf("%-24s %14.1f %14.0f %10d\n", r.Name, r.NsPerOp, 1e9/r.NsPerOp, r.AllocsPerOp)
	}
	speedup, err := bench.Speedup(rows, bench.MSCNTrainIterScalar, bench.MSCNTrainIterBatch)
	if err != nil {
		return err
	}
	qppSpeedup, err := bench.Speedup(rows, bench.QPPTrainIterScalar, bench.QPPTrainIterBatch)
	if err != nil {
		return err
	}
	fmt.Printf("\ntrain-iteration speedup (batched vs scalar): mscn %.2fx, qppnet %.2fx\n", speedup, qppSpeedup)
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("training-iteration speedup %.2fx below required %.2fx", speedup, minSpeedup)
	}
	warm, err := bench.WarmServeSpeedup(rows)
	if err != nil {
		return err
	}
	fmt.Printf("warm-hit serving speedup (cache hit vs coalesced): %.1fx\n", warm)
	if minWarmSpeedup > 0 && warm < minWarmSpeedup {
		return fmt.Errorf("warm-hit serving speedup %.1fx below required %.1fx", warm, minWarmSpeedup)
	}
	postSwap, err := bench.PostSwapWarmSpeedup(rows)
	if err != nil {
		return err
	}
	fmt.Printf("post-hot-swap warm-hit serving speedup: %.1fx\n", postSwap)
	if minWarmSpeedup > 0 && postSwap < minWarmSpeedup {
		return fmt.Errorf("post-swap warm-hit speedup %.1fx below required %.1fx — the hot swap chilled the cache", postSwap, minWarmSpeedup)
	}
	multiTenant, err := bench.MultiTenantWarmSpeedup(rows)
	if err != nil {
		return err
	}
	fmt.Printf("multi-tenant warm-hit serving speedup: %.1fx\n", multiTenant)
	if minWarmSpeedup > 0 && multiTenant < minWarmSpeedup {
		return fmt.Errorf("multi-tenant warm-hit speedup %.1fx below required %.1fx — the tenant layer is taxing the warm path", multiTenant, minWarmSpeedup)
	}
	routed, err := bench.RouterWarmSpeedup(rows)
	if err != nil {
		return err
	}
	fmt.Printf("routed warm-hit speedup (warm fleet vs uncached fan-out): %.1fx\n", routed)
	if minWarmSpeedup > 0 && routed < minWarmSpeedup {
		return fmt.Errorf("routed warm-hit speedup %.1fx below required %.1fx", routed, minWarmSpeedup)
	}
	postRollout, err := bench.PostRolloutWarmSpeedup(rows)
	if err != nil {
		return err
	}
	fmt.Printf("post-rollout routed warm-hit speedup: %.1fx\n", postRollout)
	if minWarmSpeedup > 0 && postRollout < minWarmSpeedup {
		return fmt.Errorf("post-rollout routed warm-hit speedup %.1fx below required %.1fx — the rollout chilled the fleet's caches", postRollout, minWarmSpeedup)
	}
	miss, err := bench.MissPipelineSpeedup(rows)
	if err != nil {
		return err
	}
	fmt.Printf("streaming-miss pipeline speedup (staged vs serial coalescer): %.2fx\n", miss)
	if minMissSpeedup > 0 {
		if runtime.GOMAXPROCS(0) < 2 {
			fmt.Printf("miss-pipeline gate skipped: GOMAXPROCS=%d — stages need a second core to overlap on\n", runtime.GOMAXPROCS(0))
		} else if miss < minMissSpeedup {
			return fmt.Errorf("streaming-miss pipeline speedup %.2fx below required %.2fx — the staged pipeline is not overlapping its stages", miss, minMissSpeedup)
		}
	}
	if maxWarmAllocs >= 0 {
		idx := bench.Index(rows)
		for _, name := range bench.AllocGated {
			r, ok := idx[name]
			if !ok {
				return fmt.Errorf("alloc gate: row %q missing from this run", name)
			}
			if r.AllocsPerOp > maxWarmAllocs {
				return fmt.Errorf("alloc gate: %s at %d allocs/op exceeds -max-warm-allocs %d — the warm path must stay allocation-free",
					name, r.AllocsPerOp, maxWarmAllocs)
			}
		}
		fmt.Printf("warm-row alloc gate passed (ceiling %d allocs/op)\n", maxWarmAllocs)
	}
	if maxHistRecordNs > 0 {
		r, ok := bench.Index(rows)[bench.ObsHistRecord]
		if !ok {
			return fmt.Errorf("hist-record gate: row %q missing from this run", bench.ObsHistRecord)
		}
		if r.NsPerOp > maxHistRecordNs {
			return fmt.Errorf("hist-record gate: %s at %.1f ns/op exceeds -max-hist-record-ns %.1f — a latency sample must stay two cheap atomic adds",
				bench.ObsHistRecord, r.NsPerOp, maxHistRecordNs)
		}
		fmt.Printf("histogram-record gate passed (%.1f ns/op, ceiling %.1f)\n", r.NsPerOp, maxHistRecordNs)
	}
	if baseline != "" {
		base, err := bench.ReadJSON(baseline)
		if err != nil {
			return err
		}
		if err := bench.Compare(base, rows, tolerance); err != nil {
			return err
		}
		fmt.Printf("regression gate passed (tolerance %.0f%%)\n", 100*tolerance)
	}
	return nil
}

// MedParams is a middle grid: every experiment, reduced pools.
func MedParams() experiments.Params {
	return experiments.Params{
		NumEnvs:     10,
		PerEnv:      map[string]int{"tpch": 400, "sysbench": 500, "imdb": 300},
		Scales:      []int{1000, 2000, 4000},
		Iters:       map[string]int{"tpch": 600, "sysbench": 150, "imdb": 600},
		Fig1Queries: 500,
		Seed:        1,
	}
}
