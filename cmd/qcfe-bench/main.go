// Command qcfe-bench runs the paper's experiments and prints the same rows
// and series the paper's tables and figures report.
//
// Usage:
//
//	qcfe-bench -exp table4 -benchmark tpch -size quick
//	qcfe-bench -exp all -size med -workers 8
//
// Experiments: fig1, table4, fig5, fig6, fig7, table5, table6, table7,
// fig8, all. Sizes: quick (seconds), med (minutes), full (the paper's
// scales; tens of minutes). Independent experiments and the labeling
// pipeline underneath them fan out over the worker pool (see -workers);
// every number printed is identical at any worker count, though with
// -exp all the experiment *blocks* appear in completion order, which may
// vary between runs when workers > 1.
//
// With -micro the command instead runs the estimator-stack
// microbenchmarks (train iters/sec, predictions/sec, batched vs scalar)
// on the quick grid and writes the machine-readable BENCH_PR2.json rows.
// This is the CI benchmark-regression pipeline:
//
//	qcfe-bench -micro -out BENCH_PR2.json -baseline BENCH_PR2.json
//
// exits non-zero when a gated predictions/sec row regresses more than
// -tolerance against the (machine-normalized) baseline, or when the
// batched training iteration fails the -min-train-speedup floor against
// the retained scalar reference path.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1|table4|fig5|fig6|fig7|table5|table6|table7|fig8|all")
	benchmark := flag.String("benchmark", "", "benchmark: tpch|sysbench|imdb (default: all applicable)")
	size := flag.String("size", "med", "grid size: quick|med|full")
	workers := flag.Int("workers", 0, "per-fan-out worker cap for parallel labeling and experiments; nested stages each use up to this many goroutines (0 = GOMAXPROCS)")
	micro := flag.Bool("micro", false, "run the estimator microbenchmarks and emit BENCH_PR2.json rows instead of the experiment suite")
	out := flag.String("out", "BENCH_PR2.json", "with -micro: output path for the benchmark rows")
	baseline := flag.String("baseline", "", "with -micro: baseline BENCH_PR2.json to gate against (empty = no gate)")
	tolerance := flag.Float64("tolerance", 0.20, "with -micro -baseline: maximum allowed predictions/sec regression")
	minSpeedup := flag.Float64("min-train-speedup", 1.7, "with -micro: minimum batched/scalar training-iteration speedup on the mscn pair (0 disables; ~2.1-2.3x measured, floor set below for run-to-run noise)")
	flag.Parse()

	parallel.SetDefaultWorkers(*workers)

	if *micro {
		if err := runMicro(*out, *baseline, *tolerance, *minSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var params experiments.Params
	switch *size {
	case "quick":
		params = experiments.QuickParams()
	case "med":
		params = MedParams()
	case "full":
		params = experiments.DefaultParams()
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *size)
		os.Exit(2)
	}
	suite := experiments.NewSuite(params, os.Stdout)

	benchmarks := []string{"tpch", "sysbench", "imdb"}
	if *benchmark != "" {
		benchmarks = []string{*benchmark}
	}
	if err := suite.RunAll(*exp, benchmarks); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-bench: %v\n", err)
		os.Exit(1)
	}
}

// runMicro runs the microbenchmarks, writes the JSON rows, and applies
// the CI gates: the training-iteration speedup floor (batched vs the
// scalar reference, same machine, so machine speed cancels exactly) and,
// when a baseline is given, the predictions/sec regression tolerance.
func runMicro(out, baseline string, tolerance, minSpeedup float64) error {
	rows, err := bench.Run()
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(out, rows); err != nil {
		return err
	}
	fmt.Printf("%-24s %14s %14s %10s\n", "benchmark", "ns/op", "ops/sec", "allocs/op")
	for _, r := range rows {
		fmt.Printf("%-24s %14.1f %14.0f %10d\n", r.Name, r.NsPerOp, 1e9/r.NsPerOp, r.AllocsPerOp)
	}
	speedup, err := bench.Speedup(rows, bench.MSCNTrainIterScalar, bench.MSCNTrainIterBatch)
	if err != nil {
		return err
	}
	qppSpeedup, err := bench.Speedup(rows, bench.QPPTrainIterScalar, bench.QPPTrainIterBatch)
	if err != nil {
		return err
	}
	fmt.Printf("\ntrain-iteration speedup (batched vs scalar): mscn %.2fx, qppnet %.2fx\n", speedup, qppSpeedup)
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("training-iteration speedup %.2fx below required %.2fx", speedup, minSpeedup)
	}
	if baseline != "" {
		base, err := bench.ReadJSON(baseline)
		if err != nil {
			return err
		}
		if err := bench.Compare(base, rows, tolerance); err != nil {
			return err
		}
		fmt.Printf("regression gate passed (tolerance %.0f%%)\n", 100*tolerance)
	}
	return nil
}

// MedParams is a middle grid: every experiment, reduced pools.
func MedParams() experiments.Params {
	return experiments.Params{
		NumEnvs:     10,
		PerEnv:      map[string]int{"tpch": 400, "sysbench": 500, "imdb": 300},
		Scales:      []int{1000, 2000, 4000},
		Iters:       map[string]int{"tpch": 600, "sysbench": 150, "imdb": 600},
		Fig1Queries: 500,
		Seed:        1,
	}
}
