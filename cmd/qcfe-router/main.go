// Command qcfe-router is the scatter/gather front end for a fleet of
// qcfe-serve replicas. It consistent-hashes each query's normalized
// fingerprint onto a replica (so literal variants of one template
// always share that replica's cache tiers), splits batch requests into
// per-replica sub-batches priced concurrently, and merges the results
// back into request order — byte-for-byte the same answer a single
// replica (or the library's EstimateBatch) would give, for any fleet
// size.
//
// Usage:
//
//	qcfe-router -replicas http://host1:8080,http://host2:8080 -addr :8090
//
// Endpoints (data plane identical to a single replica's):
//
//	POST /estimate        {"env":0,"sql":"SELECT ..."}  → {"ms":1.23}
//	POST /estimate_batch  {"env":0,"sqls":["...",...]}  → {"ms":[...]}
//	GET  /healthz                                       → fleet health + uniform generation
//	GET  /stats                                         → merged fleet stats
//	POST /rollout         admin: canary-gated fleet artifact rollout
//	GET  /metrics                                       → Prometheus text exposition
//	GET  /trace/recent                                  → recent finished request traces
//	GET  /version                                       → build identification
//	GET  /debug/pprof/    admin: net/http/pprof profiles
//
// Replica faults (connection errors, 5xx, hangs past -timeout) trip a
// per-replica circuit breaker after -breaker-threshold consecutive
// failures; affected queries retry on their fingerprint's deterministic
// ring successor, and a background health loop probes tripped replicas
// back into rotation. Query faults (4xx: bad SQL, unknown environment)
// propagate to the caller untouched.
//
// POST /rollout (requires -admin-token, which must match the replicas'
// -admin-token) pushes a new artifact through the fleet one replica at
// a time: each replica stages the artifact, prices the canary probe set
// on the staged estimator, and only commits if the predictions match
// the fleet reference bit for bit; the first mismatch rolls every
// already-committed replica back, leaving the fleet on the old
// generation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/router"
)

func main() {
	replicas := flag.String("replicas", "", "comma-separated replica base URLs, e.g. http://host1:8080,http://host2:8080 (required)")
	addr := flag.String("addr", ":8090", "HTTP listen address")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per replica on the consistent-hash ring")
	timeout := flag.Duration("timeout", 5*time.Second, "per-replica round-trip deadline (data plane and health probes)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive replica faults that trip its circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long a tripped breaker diverts traffic before a half-open probe")
	maxAttempts := flag.Int("max-attempts", 0, "replicas one query may try, primary plus fallbacks (0 = fleet size)")
	retryBackoff := flag.Duration("retry-backoff", 10*time.Millisecond, "pause before the first retry round, doubling per round")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "background /healthz poll period")
	adminToken := flag.String("admin-token", "", "enable POST /rollout, authenticated by this X-QCFE-Admin-Token value and presented to the replicas' /swap endpoints (empty = rollout disabled)")
	bakeTime := flag.Duration("rollout-bake", 0, "pause after each replica's rollout commit before proceeding to the next")
	slowQuery := flag.Duration("slow-query-threshold", 0, "log every routed request slower than this as one structured JSON line on stderr, with its trace ID and per-replica sub-batch spans (0 = off)")
	traceRing := flag.Int("trace-ring", 0, "finished-request traces retained for GET /trace/recent (0 = 256)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *showVersion {
		printVersion("qcfe-router")
		return
	}
	urls := splitReplicas(*replicas)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "qcfe-router: -replicas is required")
		flag.Usage()
		os.Exit(2)
	}
	rt, err := router.New(urls, router.Options{
		Vnodes:             *vnodes,
		Timeout:            *timeout,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		MaxAttempts:        *maxAttempts,
		RetryBackoff:       *retryBackoff,
		HealthInterval:     *healthInterval,
		AdminToken:         *adminToken,
		RolloutBakeTime:    *bakeTime,
		SlowQueryThreshold: *slowQuery,
		TraceRing:          *traceRing,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-router: %v\n", err)
		os.Exit(1)
	}
	if err := run(rt, urls, *addr, *adminToken != ""); err != nil {
		fmt.Fprintf(os.Stderr, "qcfe-router: %v\n", err)
		os.Exit(1)
	}
}

// printVersion reports the binary's build identity — the same fields
// GET /version serves.
func printVersion(name string) {
	b := obs.Build()
	fmt.Printf("%s %s (%s", name, orDev(b.Version), b.GoVersion)
	if b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Printf(", rev %s", rev)
		if b.VCSModified {
			fmt.Print("+dirty")
		}
	}
	fmt.Println(")")
}

func orDev(v string) string {
	if v == "" || v == "(devel)" {
		return "devel"
	}
	return v
}

func splitReplicas(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

func run(rt *router.Router, urls []string, addr string, rollout bool) error {
	fmt.Printf("qcfe-router: fronting %d replicas: %s\n", len(urls), strings.Join(urls, ", "))
	if rollout {
		fmt.Println("qcfe-router: rollout enabled (POST /rollout; authenticate with X-QCFE-Admin-Token)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx)

	httpSrv := &http.Server{
		Addr:        addr,
		Handler:     rt.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("qcfe-router: listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("qcfe-router: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
