package qcfe

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/artifact"
	"repro/internal/planner"
	"repro/internal/workload"
)

// trainedFixture builds one small trained estimator per model type plus
// held-out test samples, shared across the artifact tests.
func trainedFixture(t *testing.T, model string) (*CostEstimator, []workload.Sample) {
	t.Helper()
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test := pool.Split(0.8)
	est, err := NewPipeline(model,
		WithTrainIters(40), WithReferences(20), WithSeed(3),
	).Fit(b, envs, train)
	if err != nil {
		t.Fatalf("fit %s: %v", model, err)
	}
	return est, test
}

func saveToBytes(t *testing.T, est *CostEstimator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// TestSaveLoadRoundTrip is the artifact contract: for every model type,
// a loaded estimator's EstimateBatch output is bit-identical to the
// in-memory estimator's on the same plans, and the SQL serving path
// agrees too.
func TestSaveLoadRoundTrip(t *testing.T) {
	for _, model := range []string{"mscn", "qppnet", "analytic"} {
		t.Run(model, func(t *testing.T) {
			est, test := trainedFixture(t, model)
			raw := saveToBytes(t, est)

			loaded, err := LoadEstimator(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if loaded.ModelName() != model || loaded.BenchmarkName() != "sysbench" {
				t.Fatalf("identity = %s/%s", loaded.ModelName(), loaded.BenchmarkName())
			}
			if len(loaded.Environments()) != len(est.Environments()) {
				t.Fatalf("environments: %d != %d", len(loaded.Environments()), len(est.Environments()))
			}
			if loaded.TrainSeconds() != est.TrainSeconds() {
				t.Fatalf("train time: %v != %v", loaded.TrainSeconds(), est.TrainSeconds())
			}
			if loaded.ReductionRatio() != est.ReductionRatio() {
				t.Fatalf("reduction ratio: %v != %v", loaded.ReductionRatio(), est.ReductionRatio())
			}

			plans := make([]*planner.Node, len(test))
			for i, s := range test {
				plans[i] = s.Plan
			}
			want := est.EstimateBatch(plans)
			got := loaded.EstimateBatch(plans)
			for i := range plans {
				if got[i] != want[i] {
					t.Fatalf("plan %d: loaded %v != in-memory %v", i, got[i], want[i])
				}
			}

			// The SQL path re-plans inside the loaded estimator's rebuilt
			// dataset; predictions must still agree bit for bit.
			env := est.Environments()[0]
			lenv := loaded.Environments()[0]
			sqls := []string{
				"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300",
				"SELECT * FROM sbtest1 WHERE id = 7",
			}
			w, err := est.EstimateSQLBatch(env, sqls)
			if err != nil {
				t.Fatal(err)
			}
			g, err := loaded.EstimateSQLBatch(lenv, sqls)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sqls {
				if g[i] != w[i] {
					t.Fatalf("sql %d: loaded %v != in-memory %v", i, g[i], w[i])
				}
			}

			// Saving the loaded estimator reproduces the artifact exactly:
			// the bytes are a pure function of the trained pipeline.
			if !bytes.Equal(raw, saveToBytes(t, loaded)) {
				t.Fatalf("save(load(artifact)) differs from artifact")
			}
		})
	}
}

// TestLoadRejectsDamage locks in the loud-failure contract for every way
// an artifact can be wrong: truncation, bit corruption, a foreign file,
// and a format-version mismatch each produce a distinct error.
func TestLoadRejectsDamage(t *testing.T) {
	est, _ := trainedFixture(t, "mscn")
	raw := saveToBytes(t, est)

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 10, 19, len(raw) / 2, len(raw) - 1} {
			if _, err := LoadEstimator(bytes.NewReader(raw[:cut])); !errors.Is(err, artifact.ErrTruncated) {
				t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		// Flip one byte in the payload (past the 20-byte header).
		for _, pos := range []int{20, 100, len(raw) - 5} {
			bad := append([]byte(nil), raw...)
			bad[pos] ^= 0xff
			if _, err := LoadEstimator(bytes.NewReader(bad)); !errors.Is(err, artifact.ErrCorrupt) {
				t.Fatalf("pos=%d: err = %v, want ErrCorrupt", pos, err)
			}
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[8] = 0x7f // version field follows the 8-byte magic
		if _, err := LoadEstimator(bytes.NewReader(bad)); !errors.Is(err, artifact.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("not an artifact", func(t *testing.T) {
		junk := []byte("PK\x03\x04 definitely a zip file, not a model artifact")
		if _, err := LoadEstimator(bytes.NewReader(junk)); !errors.Is(err, artifact.ErrNotArtifact) {
			t.Fatalf("err = %v, want ErrNotArtifact", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := LoadEstimator(bytes.NewReader(nil)); !errors.Is(err, artifact.ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
}

// TestFitRejectsEmptyTrain: fitting on a nil or empty sample slice must
// fail descriptively instead of silently training on zero samples.
func TestFitRejectsEmptyTrain(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	for _, train := range [][]workload.Sample{nil, {}} {
		if _, err := NewPipeline("mscn").Fit(b, envs, train); err == nil {
			t.Fatalf("Fit(%v samples) should error", len(train))
		}
	}
}

// TestFitCtxCancelled: a cancelled context aborts the pipeline with the
// context's error and no estimator.
func TestFitCtxCancelled(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	est, err := NewPipeline("mscn", WithTrainIters(40)).FitCtx(ctx, b, envs, train)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if est != nil {
		t.Fatalf("cancelled fit returned an estimator")
	}
	// Cancellation must also stop workload collection.
	if _, err := b.CollectWorkloadCtx(ctx, envs, 40, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("collect err = %v, want context.Canceled", err)
	}
}
