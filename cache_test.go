package qcfe

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// cacheQueries builds a mixed workload over the sysbench schema: exact
// repeats (prediction tier), literal variants of shared templates
// (template tier), and reformatted spellings of identical semantics
// (feature tier).
func cacheQueries(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, fmt.Sprintf("SELECT * FROM sbtest1 WHERE id = %d", 10+i))
		case 1:
			out = append(out, fmt.Sprintf("SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN %d AND %d", i, i+200))
		case 2:
			// Same semantics as case 0's i-2 query, different spelling.
			out = append(out, fmt.Sprintf("select  *  from sbtest1 where id=%d", 10+i-2))
		default:
			out = append(out, fmt.Sprintf("SELECT k FROM sbtest1 WHERE k < %d ORDER BY k LIMIT %d", i*3, 1+i%7))
		}
	}
	return out
}

// TestCacheEquivalence is the tentpole's correctness bar: with a cache
// attached, EstimateSQL and EstimateSQLBatch return bit-identical
// results to the uncached paths — on cold misses, warm hits, template
// hits, and feature hits alike.
func TestCacheEquivalence(t *testing.T) {
	est, _ := trainedFixture(t, "mscn")
	env := est.Environments()[0]
	env2 := est.Environments()[1]
	queries := cacheQueries(40)

	// Uncached ground truth, per environment.
	want := make([]float64, len(queries))
	want2 := make([]float64, len(queries))
	for i, q := range queries {
		var err error
		if want[i], err = est.EstimateSQL(env, q); err != nil {
			t.Fatalf("uncached %q: %v", q, err)
		}
		if want2[i], err = est.EstimateSQL(env2, q); err != nil {
			t.Fatal(err)
		}
	}
	batchWant, err := est.EstimateSQLBatch(env, queries)
	if err != nil {
		t.Fatal(err)
	}

	est.AttachCache(NewQueryCache(CacheOptions{Shards: 8, Capacity: 1024}))
	// Three passes: cold (populating), warm (prediction tier), and a
	// shuffled batch pass (mixed hits/misses across tiers).
	for pass := 0; pass < 2; pass++ {
		for i, q := range queries {
			got, err := est.EstimateSQL(env, q)
			if err != nil {
				t.Fatalf("pass %d %q: %v", pass, q, err)
			}
			if got != want[i] {
				t.Fatalf("pass %d query %d: cached %v != uncached %v", pass, i, got, want[i])
			}
		}
	}
	batchGot, err := est.EstimateSQLBatch(env, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if batchGot[i] != batchWant[i] {
			t.Fatalf("batch query %d: cached %v != uncached %v", i, batchGot[i], batchWant[i])
		}
	}
	// A second environment must not alias the first's entries.
	for i, q := range queries {
		got, err := est.EstimateSQL(env2, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want2[i] {
			t.Fatalf("env2 query %d: cached %v != uncached %v", i, got, want2[i])
		}
	}
	st, ok := est.CacheStats()
	if !ok {
		t.Fatal("CacheStats must report once attached")
	}
	if st.Prediction.Hits == 0 || st.Template.Hits == 0 || st.Feature.Hits == 0 {
		t.Fatalf("every tier should have hits on this workload: %+v", st)
	}
	// Errors must be identical to the uncached path's, and never cached.
	for pass := 0; pass < 2; pass++ {
		if _, err := est.EstimateSQL(env, "SELECT * FROM nope WHERE x = 1"); err == nil {
			t.Fatal("bad table must error")
		}
		if _, err := est.EstimateSQL(env, "not sql at all"); err == nil {
			t.Fatal("unparsable text must error")
		}
	}
}

// TestCacheEquivalenceAnalytic covers the feature-tier fast path for
// the analytic model: its entries carry only the plan (no feature
// rows), and cached predictions must still equal uncached ones bitwise.
func TestCacheEquivalenceAnalytic(t *testing.T) {
	est, _ := trainedFixture(t, "analytic")
	env := est.Environments()[0]
	queries := cacheQueries(16)
	want := make([]float64, len(queries))
	for i, q := range queries {
		var err error
		if want[i], err = est.EstimateSQL(env, q); err != nil {
			t.Fatal(err)
		}
	}
	est.AttachCache(NewQueryCache(CacheOptions{Shards: 4, Capacity: 256}))
	for pass := 0; pass < 2; pass++ {
		got, err := est.EstimateSQLBatch(env, queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			if got[i] != want[i] {
				t.Fatalf("pass %d query %d: cached %v != uncached %v", pass, i, got[i], want[i])
			}
		}
	}
	st, _ := est.CacheStats()
	if st.Feature.Hits == 0 || st.Prediction.Hits == 0 {
		t.Fatalf("expected feature+prediction tier traffic: %+v", st)
	}
}

// TestCacheGenerationSwap is the Save→Load invalidation contract: after
// a differently-trained estimator attaches to the same cache, every
// prediction equals the new estimator's uncached output (never the old
// one's), while a byte-identical Save→Load round trip keeps the cache
// warm.
func TestCacheGenerationSwap(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	fit := func(iters int) *CostEstimator {
		est, err := NewPipeline("mscn", WithTrainIters(iters), WithReferences(20), WithSeed(3)).Fit(b, envs, train)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	est1, est2 := fit(40), fit(80) // different weights
	env := envs[0]
	queries := cacheQueries(16)
	want2 := make([]float64, len(queries))
	for i, q := range queries {
		if want2[i], err = est2.EstimateSQL(env, q); err != nil {
			t.Fatal(err)
		}
	}

	cache := NewQueryCache(CacheOptions{Shards: 4, Capacity: 512})
	est1.AttachCache(cache)
	for _, q := range queries { // warm with est1's predictions
		if _, err := est1.EstimateSQL(env, q); err != nil {
			t.Fatal(err)
		}
	}

	// The swap: est2 takes over the cache.
	est2.AttachCache(cache)
	for i, q := range queries {
		if ms, ok := est2.CachedEstimate(env, q); ok {
			t.Fatalf("stale est1 prediction %v visible to est2 for %q", ms, q)
		}
		got, err := est2.EstimateSQL(env, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want2[i] {
			t.Fatalf("query %d after swap: %v != est2's uncached %v", i, got, want2[i])
		}
	}
	// est1 keeps serving its own traffic correctly even after the swap
	// (its stamps differ), without polluting est2's entries.
	w1, err := est1.EstimateSQL(env, "SELECT * FROM sbtest1 WHERE id = 999999")
	if err != nil {
		t.Fatal(err)
	}
	if ms, ok := est2.CachedEstimate(env, "SELECT * FROM sbtest1 WHERE id = 999999"); ok {
		t.Fatalf("est1's post-swap write (%v) leaked into est2's generation (%v)", w1, ms)
	}

	// Save→Load of est2 hashes to the same generation: the cache stays
	// warm across the round trip.
	var buf bytes.Buffer
	if err := est2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded.AttachCache(cache)
	warmHits := 0
	for i, q := range queries {
		if ms, ok := loaded.CachedEstimate(env, q); ok {
			warmHits++
			if ms != want2[i] {
				t.Fatalf("warm entry %d drifted: %v != %v", i, ms, want2[i])
			}
		}
	}
	if warmHits == 0 {
		t.Fatal("byte-identical Save→Load should keep the cache warm")
	}
}

// TestCacheConcurrentEquivalence hammers one cached estimator from many
// goroutines (shared query population, so tiers are contended) and
// checks every result bitwise against the uncached ground truth; run
// under -race in CI it also proves the wiring races nowhere.
func TestCacheConcurrentEquivalence(t *testing.T) {
	est, _ := trainedFixture(t, "mscn")
	envs := est.Environments()
	queries := cacheQueries(24)
	want := make(map[int][]float64, len(envs))
	for _, env := range envs {
		w := make([]float64, len(queries))
		for i, q := range queries {
			var err error
			if w[i], err = est.EstimateSQL(env, q); err != nil {
				t.Fatal(err)
			}
		}
		want[env.ID] = w
	}
	est.AttachCache(NewQueryCache(CacheOptions{Shards: 8, Capacity: 256}))
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < 200; op++ {
				env := envs[(w+op)%len(envs)]
				i := (w*7 + op) % len(queries)
				if w%3 == 0 && op%5 == 0 { // mix batch traffic in
					got, err := est.EstimateSQLBatch(env, queries[i:min(i+4, len(queries))])
					if err != nil {
						errs <- err
						return
					}
					for k, v := range got {
						if v != want[env.ID][i+k] {
							errs <- fmt.Errorf("batch worker %d: query %d got %v want %v", w, i+k, v, want[env.ID][i+k])
							return
						}
					}
					continue
				}
				got, err := est.EstimateSQL(env, queries[i])
				if err != nil {
					errs <- err
					return
				}
				if got != want[env.ID][i] {
					errs <- fmt.Errorf("worker %d: query %d got %v want %v", w, i, got, want[env.ID][i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
