package qcfe

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/planner"
)

// Metamorphic properties of the estimate surface: relations that must
// hold between outputs without knowing any output's true value. They
// complement the equivalence tests (which pin batch == scalar on one
// ordering) by quantifying over orderings, multiplicities, and cache
// state — the ways production traffic actually differs from tests.

// TestMetamorphicBatchPermutation: EstimateBatch and EstimateSQLBatch
// are pointwise functions of their inputs — permuting the batch
// permutes the outputs and changes nothing else, and duplicating an
// input duplicates its output bitwise. A violation would mean batch
// composition (arena reuse, chunking, cache population order) leaks
// between batch elements.
func TestMetamorphicBatchPermutation(t *testing.T) {
	est, test := trainedFixture(t, "mscn")
	env := est.Environments()[0]

	// Plan-level: permute the test set's plans.
	plans := make([]*planner.Node, len(test))
	base := make([]float64, len(test))
	for i, s := range test {
		plans[i] = s.Plan
		base[i] = est.EstimateMs(s.Plan)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		perm := rng.Perm(len(plans))
		shuffled := make([]*planner.Node, len(plans))
		for i, p := range perm {
			shuffled[i] = plans[p]
		}
		got := est.EstimateBatch(shuffled)
		for i, p := range perm {
			if got[i] != base[p] {
				t.Fatalf("trial %d: permuted batch[%d] = %v, want plans[%d]'s %v", trial, i, got[i], p, base[p])
			}
		}
	}

	// SQL-level: permutation plus duplication, with and without a cache.
	queries := cacheQueries(20)
	sqlBase := make([]float64, len(queries))
	for i, q := range queries {
		var err error
		if sqlBase[i], err = est.EstimateSQL(env, q); err != nil {
			t.Fatal(err)
		}
	}
	check := func(label string) {
		for trial := 0; trial < 3; trial++ {
			perm := rng.Perm(len(queries))
			// Duplicate every third element of the permuted batch.
			var batch []string
			var want []float64
			for i, p := range perm {
				batch = append(batch, queries[p])
				want = append(want, sqlBase[p])
				if i%3 == 0 {
					batch = append(batch, queries[p])
					want = append(want, sqlBase[p])
				}
			}
			got, err := est.EstimateSQLBatch(env, batch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range batch {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: batch[%d] (%q) = %v, want %v", label, trial, i, batch[i], got[i], want[i])
				}
			}
		}
	}
	check("uncached")
	est.AttachCache(NewQueryCache(CacheOptions{Shards: 4, Capacity: 64})) // small: forces evictions mid-batch
	check("cached-cold")
	check("cached-warm")
}

// TestMetamorphicStagedSplit: the two-phase batch API the pipelined
// server drives — FeaturizeSQLBatchCtx then PredictFeaturized — is
// bitwise the fused EstimateSQLBatch under permutation and duplication,
// uncached, cache-cold, and cache-warm. This is the library half of the
// serve-layer pipeline contract: splitting the call across stage
// workers may change when work happens, never what it computes.
func TestMetamorphicStagedSplit(t *testing.T) {
	est, _ := trainedFixture(t, "mscn")
	env := est.Environments()[0]
	queries := cacheQueries(20)

	sqlBase := make([]float64, len(queries))
	for i, q := range queries {
		var err error
		if sqlBase[i], err = est.EstimateSQL(env, q); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(23))
	check := func(label string) {
		for trial := 0; trial < 3; trial++ {
			perm := rng.Perm(len(queries))
			var batch []string
			var want []float64
			for i, p := range perm {
				batch = append(batch, queries[p])
				want = append(want, sqlBase[p])
				if i%3 == 0 {
					batch = append(batch, queries[p])
					want = append(want, sqlBase[p])
				}
			}
			fb, err := est.FeaturizeSQLBatchCtx(context.Background(), env, batch)
			if err != nil {
				t.Fatal(err)
			}
			if w, m := fb.Warm(), fb.Misses(); w+m != len(batch) {
				t.Fatalf("%s trial %d: warm %d + misses %d != batch %d", label, trial, w, m, len(batch))
			}
			got := est.PredictFeaturized(fb)
			for i := range batch {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: staged batch[%d] (%q) = %v, want fused %v", label, trial, i, batch[i], got[i], want[i])
				}
			}
		}
	}
	check("uncached")
	est.AttachCache(NewQueryCache(CacheOptions{Shards: 4, Capacity: 64}))
	check("cached-cold")
	check("cached-warm")
}

// TestMetamorphicCacheSwapMidBatch: cache-on equals cache-off even
// while the cache's generation is swapped back and forth mid-batch by
// a competing estimator. Each estimator stamps lookups and stores with
// its own generation, so concurrent generation movement may only
// change hit rates, never bytes.
func TestMetamorphicCacheSwapMidBatch(t *testing.T) {
	est, test := trainedFixture(t, "mscn")
	// A cheaply retrained competitor with different weights (and so a
	// different generation) that fights over the same cache.
	rival, err := est.Adapt(test, 15)
	if err != nil {
		t.Fatal(err)
	}
	env := est.Environments()[0]
	renv := rival.Environments()[0]
	queries := cacheQueries(24)

	// Cache-off ground truth for both estimators.
	want := make([]float64, len(queries))
	rivalWant := make([]float64, len(queries))
	for i, q := range queries {
		if want[i], err = est.EstimateSQL(env, q); err != nil {
			t.Fatal(err)
		}
		if rivalWant[i], err = rival.EstimateSQL(renv, q); err != nil {
			t.Fatal(err)
		}
		if want[i] == rivalWant[i] {
			t.Fatalf("query %d indistinguishable across estimators", i)
		}
	}

	cache := NewQueryCache(CacheOptions{Shards: 4, Capacity: 256})
	est.AttachCache(cache)
	rival.AttachCache(cache)

	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	runBatches := func(e *CostEstimator, en *Environment, wants []float64, label string) {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			got, err := e.EstimateSQLBatch(en, queries)
			if err != nil {
				errs <- err
				return
			}
			for i := range queries {
				if got[i] != wants[i] {
					errs <- fmt.Errorf("%s round %d query %d: cached %v != cache-off %v", label, r, i, got[i], wants[i])
					return
				}
			}
		}
	}
	// Both estimators batch concurrently over one cache. Every
	// AttachCache inside the other goroutine is a generation swap
	// landing mid-batch from this goroutine's point of view.
	wg.Add(3)
	go runBatches(est, env, want, "est")
	go runBatches(rival, renv, rivalWant, "rival")
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			est.AttachCache(cache) // move generation to est
			rival.AttachCache(cache)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
