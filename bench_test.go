// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark prints the same rows or
// series the paper reports (via the experiment suite's writer) and can be
// run individually:
//
//	go test -bench=BenchmarkTable4 -benchmem
//	QCFE_BENCH=med go test -bench=. -benchmem       # larger grid
//	QCFE_BENCH=full go test -bench=. -benchmem      # the paper's scales
//
// The suite is shared across benchmarks within a run, so labeled pools and
// snapshots are collected once.
package qcfe

import (
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchParams selects the experiment grid from QCFE_BENCH: quick (default,
// seconds per experiment), med (minutes), full (the paper's 20 envs and
// scales 2000–10000).
func benchParams() experiments.Params {
	switch os.Getenv("QCFE_BENCH") {
	case "full":
		return experiments.DefaultParams()
	case "med":
		return experiments.Params{
			NumEnvs: 10,
			PerEnv:  map[string]int{"tpch": 400, "sysbench": 500, "imdb": 300},
			Scales:  []int{1000, 2000, 4000},
			Iters:   map[string]int{"tpch": 600, "sysbench": 150, "imdb": 600},
			Seed:    1,
		}
	default:
		return experiments.Params{
			NumEnvs: 5,
			PerEnv:  map[string]int{"tpch": 120, "sysbench": 160, "imdb": 90},
			Scales:  []int{200, 400},
			Iters:   map[string]int{"tpch": 100, "sysbench": 80, "imdb": 100},
			Seed:    1,
		}
	}
}

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	// Same guard as the internal/experiments tests: even the quick grid
	// collects thousands of labeled queries, so `go test -short -bench=.`
	// must never enter it. (The per-package microbenchmarks in
	// internal/... stay available under -short; only the experiment-grid
	// benchmarks here are heavy.)
	if testing.Short() {
		b.Skip("heavy experiment grid; skipped in -short (CI) mode")
	}
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(benchParams(), os.Stdout)
	})
	return suite
}

// BenchmarkFigure1 regenerates Figure 1: average cost of 1000 queries under
// five environments in TPCH and Sysbench (expected spread 2–3×).
func BenchmarkFigure1(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		cells, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		spread := experiments.Fig1Spread(cells)
		b.ReportMetric(spread["tpch"], "tpch-spread-x")
		b.ReportMetric(spread["sysbench"], "sysbench-spread-x")
	}
}

func benchTable4(b *testing.B, benchmark string) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4(benchmark)
		if err != nil {
			b.Fatal(err)
		}
		// Report the largest-scale QCFE(mscn) accuracy as the headline metric.
		for _, r := range rows {
			if r.Model == "QCFE(mscn)" {
				b.ReportMetric(r.MeanQ, "qcfe-mscn-meanq")
				b.ReportMetric(r.Pearson, "qcfe-mscn-pearson")
			}
		}
	}
}

// BenchmarkTable4TPCH regenerates the TPCH block of Table IV.
func BenchmarkTable4TPCH(b *testing.B) { benchTable4(b, "tpch") }

// BenchmarkTable4Sysbench regenerates the Sysbench block of Table IV.
func BenchmarkTable4Sysbench(b *testing.B) { benchTable4(b, "sysbench") }

// BenchmarkTable4JobLight regenerates the job-light block of Table IV.
func BenchmarkTable4JobLight(b *testing.B) { benchTable4(b, "imdb") }

func benchFigure5(b *testing.B, benchmark string) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure5(benchmark); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5TPCH regenerates the TPCH q-error box plots of Figure 5.
func BenchmarkFigure5TPCH(b *testing.B) { benchFigure5(b, "tpch") }

// BenchmarkFigure5Sysbench regenerates the Sysbench boxes of Figure 5.
func BenchmarkFigure5Sysbench(b *testing.B) { benchFigure5(b, "sysbench") }

// BenchmarkFigure5JobLight regenerates the job-light boxes of Figure 5.
func BenchmarkFigure5JobLight(b *testing.B) { benchFigure5(b, "imdb") }

// BenchmarkFigure6 regenerates the ablation study (FSO / FST / FSO+FR /
// FSO+GD / FSO+Greedy) on every benchmark.
func BenchmarkFigure6(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"tpch", "sysbench", "imdb"} {
			if _, err := s.Figure6(bench); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure7 regenerates the per-operator feature-reduction counts on
// TPCH (Greedy ≈1%, GD and FR ≈40%).
func BenchmarkFigure7(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		greedy, gd, fr := experiments.ReductionSummary(rows)
		b.ReportMetric(100*greedy, "greedy-reduction-%")
		b.ReportMetric(100*gd, "gd-reduction-%")
		b.ReportMetric(100*fr, "fr-reduction-%")
	}
}

// BenchmarkTable5 regenerates the template-scale robustness study (FSO vs
// FST) on TPCH and job-light.
func BenchmarkTable5(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table5("tpch", []int{1, 2, 3, 4}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Table5("imdb", []int{2, 4, 6, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates the reference-count robustness study
// (|R| = 200…500 on TPCH, QCFE(qpp)).
func BenchmarkTable6(b *testing.B) {
	s := benchSuite(b)
	refs := []int{200, 250, 300, 400, 500}
	if os.Getenv("QCFE_BENCH") == "" {
		refs = []int{50, 100, 150} // quick grid has a small pool
	}
	for i := 0; i < b.N; i++ {
		if _, err := s.Table6(refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7 regenerates the transferability study on TPCH and
// job-light (basis vs trans-FSO vs trans-FST on new hardware).
func BenchmarkTable7(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"tpch", "imdb"} {
			if _, err := s.Table7(bench); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure8 regenerates the convergence curves (direct vs
// transferred model) on TPCH and job-light.
func BenchmarkFigure8(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"tpch", "imdb"} {
			if _, err := s.Figure8(bench); err != nil {
				b.Fatal(err)
			}
		}
	}
}
