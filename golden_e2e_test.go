package qcfe_test

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	qcfe "repro"
	"repro/internal/serve"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files from the current build's output")

// TestGoldenEndToEnd locks the entire train→Save→Load→serve path to a
// checked-in byte sequence: a fixed pipeline is trained, saved,
// reloaded, served over HTTP, and the /estimate_batch response body is
// compared byte-for-byte against testdata/golden_estimate_batch.json.
// Any drift anywhere in the stack — dataset generation, labeling,
// training, featurization, the artifact codec, serving, JSON framing —
// fails this test loudly. After an *intentional* change to any of
// those, regenerate with:
//
//	go test -run TestGoldenEndToEnd -update-golden .
//
// and commit the diff; the review of that diff is the drift review.
func TestGoldenEndToEnd(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// The golden bytes pin float results; Go may fuse multiply-adds
		// on other architectures, which changes last-bit rounding.
		t.Skipf("golden floats are pinned on amd64, running on %s", runtime.GOARCH)
	}

	// The exact fixture the package tests train everywhere: sysbench,
	// 2 environments, 80 queries/env, 40 iterations, seed 3.
	b, err := qcfe.OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := qcfe.RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	est, err := qcfe.NewPipeline("mscn",
		qcfe.WithTrainIters(40), qcfe.WithReferences(20), qcfe.WithSeed(3),
	).Fit(b, envs, train)
	if err != nil {
		t.Fatal(err)
	}

	// Train → Save → Load: serve only what the artifact reproduces.
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := qcfe.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}

	srv := serve.New(loaded, serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// No batcher: /estimate_batch prices directly through the batched
	// inference path, so the response is complete without srv.Run.

	body := `{"env":0,"sqls":[` +
		`"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300",` +
		`"SELECT * FROM sbtest1 WHERE id = 7",` +
		`"SELECT * FROM sbtest1 WHERE k < 250",` +
		`"SELECT k FROM sbtest1 WHERE k < 120 ORDER BY k LIMIT 5",` +
		`"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 10 AND 900"]}`
	resp, err := ts.Client().Post(ts.URL+"/estimate_batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, got.String())
	}

	goldenPath := filepath.Join("testdata", "golden_estimate_batch.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, got.Len())
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v — regenerate with `go test -run TestGoldenEndToEnd -update-golden .`", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("served /estimate_batch drifted from golden:\n  got  %s  want %s"+
			"If this change is intentional, regenerate with -update-golden and commit the diff.",
			got.String(), string(want))
	}
}
