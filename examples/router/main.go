// Command router demonstrates distributed scatter/gather serving
// in-process: train one pipeline, stand up three httptest replicas all
// serving the same artifact, front them with internal/router, and show
// (1) batch answers identical to the library's batched path bit for
// bit, (2) the fingerprint routing that keeps a template's literal
// variants on one replica's cache, and (3) a canary-gated fleet
// rollout to an adapted model — plus the rollback when a canary fails.
//
//	go run ./examples/router
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	qcfe "repro"
	"repro/internal/router"
	"repro/internal/serve"
)

const adminToken = "example-token"

func main() {
	// 1. Train once; every replica loads the same saved artifact.
	bench, err := qcfe.OpenBenchmark("sysbench", 1)
	check(err)
	envs := qcfe.RandomEnvironments(2, 1)
	pool, err := bench.CollectWorkload(envs, 100, 1)
	check(err)
	train, _ := pool.Split(0.8)
	fmt.Println("training…")
	est, err := qcfe.NewPipeline("mscn", qcfe.WithTrainIters(80), qcfe.WithSeed(1)).Fit(bench, envs, train)
	check(err)
	var artifact bytes.Buffer
	check(est.Save(&artifact))

	// 2. A three-replica fleet: each replica is an independent process
	// in real deployments; here each is an httptest server over its own
	// loaded copy of the artifact, admin surface enabled for rollouts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var urls []string
	for i := 0; i < 3; i++ {
		rep, err := qcfe.LoadEstimator(bytes.NewReader(artifact.Bytes()))
		check(err)
		rep.AttachCache(qcfe.NewQueryCache(qcfe.CacheOptions{}))
		srv := serve.New(rep, serve.Options{AdminToken: adminToken, Advertise: fmt.Sprintf("replica-%d", i)})
		go srv.Run(ctx)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}

	// 3. The router consistent-hashes each query's fingerprint onto a
	// replica and scatter/gathers batches across the fleet.
	rt, err := router.New(urls, router.Options{AdminToken: adminToken, Timeout: 10 * time.Second})
	check(err)
	fmt.Printf("routing over %d replicas\n", len(rt.Replicas()))

	sqls := []string{
		"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300",
		"SELECT * FROM sbtest1 WHERE id = 7",
		"SELECT * FROM sbtest1 WHERE id = 8", // same template as above → same replica
		"SELECT * FROM sbtest1 WHERE k < 500",
		"SELECT COUNT(*) FROM sbtest1 WHERE k BETWEEN 10 AND 90",
	}
	routed, err := rt.EstimateBatch(ctx, 0, sqls)
	check(err)
	env := est.Environments()[0]
	direct, err := est.EstimateSQLBatchCtx(ctx, env, sqls)
	check(err)
	for i, sql := range sqls {
		match := "==" // bitwise
		if routed[i] != direct[i] {
			match = "!="
		}
		fmt.Printf("  %-55s routed %.4f ms %s library %.4f ms\n", sql, routed[i], match, direct[i])
	}

	// 4. Fleet rollout: adapt the model on fresh labels, then push the
	// new artifact replica-by-replica behind a byte-for-byte canary
	// gate. The canary probes are priced on each replica's *staged*
	// estimator, so a disagreeing replica never serves the new bytes.
	fmt.Println("adapting…")
	adaptPool, err := bench.CollectWorkload(envs, 40, 7)
	check(err)
	window, _ := adaptPool.Split(0.8)
	adapted, err := est.Adapt(window, 20)
	check(err)
	est = adapted
	var next bytes.Buffer
	check(est.Save(&next))
	res, err := rt.Rollout(ctx, router.RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(next.Bytes()),
		CanaryEnv:   0,
		CanarySQLs:  sqls,
	})
	check(err)
	fmt.Printf("rollout ok=%v fleet generation %s\n", res.OK, res.Generation)
	for _, step := range res.Steps {
		fmt.Printf("  %s staged=%s committed=%v\n", step.Replica, step.Staged, step.Committed)
	}

	// The routed answers now come from the new generation — still
	// bit-identical to the adapted library estimator.
	routed, err = rt.EstimateBatch(ctx, 0, sqls)
	check(err)
	direct, err = est.EstimateSQLBatchCtx(ctx, env, sqls)
	check(err)
	same := true
	for i := range sqls {
		same = same && routed[i] == direct[i]
	}
	fmt.Printf("post-rollout routed == adapted library (bitwise): %v\n", same)

	// 5. A rollout whose canary expectations cannot be met rolls the
	// fleet back: expecting the OLD model's outputs while shipping the
	// NEW artifact fails on the first replica whose canary disagrees.
	bad, err := rt.Rollout(ctx, router.RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(artifact.Bytes()), // the original model again
		CanaryEnv:   0,
		CanarySQLs:  sqls,
		ExpectedMs:  direct, // but demand the adapted model's answers
	})
	check(err)
	fmt.Printf("mismatched rollout ok=%v (%s); fleet stays on %s\n", bad.OK, bad.Error, res.Generation)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
