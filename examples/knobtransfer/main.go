// Knob/hardware transfer (paper §V-E): train a cost model in one set of
// environments, then move it to brand-new hardware by refitting only the
// feature snapshot and retraining briefly — reaching comparable accuracy
// at a fraction of from-scratch training.
//
//	go run ./examples/knobtransfer
package main

import (
	"fmt"
	"log"

	qcfe "repro"
)

func main() {
	bench, err := qcfe.OpenBenchmark("sysbench", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Basis: train across four environments on the original hardware.
	envs := qcfe.RandomEnvironments(4, 1)
	pool, err := bench.CollectWorkload(envs, 250, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	basis, err := qcfe.NewPipeline("mscn", qcfe.WithTrainIters(200)).Fit(bench, envs, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("basis model trained on %d environments in %.2fs\n", len(envs), basis.TrainSeconds())

	// New environment h2: different machine, different knobs.
	h2 := qcfe.DefaultEnvironment()
	h2.ID = 99
	h2.Knobs.SharedBuffersMB = 1024
	h2.Knobs.WorkMemKB = 65536
	pool2, err := bench.CollectWorkload([]*qcfe.Environment{h2}, 300, 7)
	if err != nil {
		log.Fatal(err)
	}
	train2, test2 := pool2.Split(0.8)

	// Option A: train from scratch on h2.
	scratch, err := qcfe.NewPipeline("mscn", qcfe.WithTrainIters(200)).
		Fit(bench, []*qcfe.Environment{h2}, train2)
	if err != nil {
		log.Fatal(err)
	}
	ss := scratch.Evaluate(test2)
	fmt.Printf("\nfrom scratch on h2: mean q-error=%.3f pearson=%.3f (train %.2fs)\n",
		ss.Mean, ss.Pearson, scratch.TrainSeconds())

	// Option B: transfer the basis — swap the snapshot, retrain 25% of the
	// iterations.
	trans, err := basis.Transfer(h2, train2, 50)
	if err != nil {
		log.Fatal(err)
	}
	ts := trans.Evaluate(test2)
	fmt.Printf("transferred basis:  mean q-error=%.3f pearson=%.3f (retrain %.2fs)\n",
		ts.Mean, ts.Pearson, trans.TrainSeconds())
	fmt.Println("\nexpected shape (paper Table VII / Figure 8): transfer ≈ scratch accuracy at ~25% of the time")
}
