// TPC-H cost estimation: the paper's headline comparison on one benchmark —
// plain MSCN (general feature engineering) against QCFE(mscn) (feature
// snapshot + feature reduction), plus the PostgreSQL analytic baseline.
// Reproduces the shape of one Table IV column group.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	qcfe "repro"
	"repro/internal/metrics"
)

func main() {
	bench, err := qcfe.OpenBenchmark("tpch", 1)
	if err != nil {
		log.Fatal(err)
	}
	envs := qcfe.RandomEnvironments(6, 1)
	pool, err := bench.CollectWorkload(envs, 150, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := pool.Split(0.8)
	fmt.Printf("TPC-H: %d labeled queries, %d environments\n\n", pool.Len(), len(envs))

	// PostgreSQL-style analytic baseline (no learning, no environment
	// awareness).
	var actual, pgPred []float64
	for _, s := range test {
		actual = append(actual, s.Ms)
		pgPred = append(pgPred, bench.AnalyticEstimateMs(s.Plan))
	}
	pg := metrics.Summarize(actual, pgPred)
	fmt.Printf("%-12s mean q-error=%10.3f  pearson=%.3f\n", "PGSQL", pg.Mean, pg.Pearson)

	// Plain MSCN: general feature engineering only.
	plain, err := qcfe.NewPipeline("mscn",
		qcfe.WithoutSnapshot(), qcfe.WithReduction("none"), qcfe.WithTrainIters(250),
	).Fit(bench, envs, train)
	if err != nil {
		log.Fatal(err)
	}
	ps := plain.Evaluate(test)
	fmt.Printf("%-12s mean q-error=%10.3f  pearson=%.3f  (train %.1fs)\n",
		"MSCN", ps.Mean, ps.Pearson, plain.TrainSeconds())

	// QCFE(mscn): snapshot from simplified templates + FR reduction.
	enhanced, err := qcfe.NewPipeline("mscn", qcfe.WithTrainIters(250)).Fit(bench, envs, train)
	if err != nil {
		log.Fatal(err)
	}
	qs := enhanced.Evaluate(test)
	fmt.Printf("%-12s mean q-error=%10.3f  pearson=%.3f  (train %.1fs, %0.f%% features pruned)\n",
		"QCFE(mscn)", qs.Mean, qs.Pearson, enhanced.TrainSeconds(), 100*enhanced.ReductionRatio())

	fmt.Println("\nexpected shape (paper Table IV): learned ≫ PGSQL; QCFE(mscn) ≥ MSCN with less training time")
}
