// Quickstart: train a QCFE-enhanced MSCN cost estimator on the Sysbench
// benchmark in a few seconds and compare it against the PostgreSQL-style
// analytic baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	qcfe "repro"
)

func main() {
	// 1. Build the benchmark dataset (deterministic per seed).
	bench, err := qcfe.OpenBenchmark("sysbench", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Sample database environments — knob configurations × hardware,
	// the paper's "ignored variables".
	envs := qcfe.RandomEnvironments(4, 1)

	// 3. Collect a labeled workload: oltp_read_only queries executed and
	// timed in every environment.
	pool, err := bench.CollectWorkload(envs, 250, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := pool.Split(0.8)
	fmt.Printf("labeled pool: %d queries across %d environments\n", pool.Len(), len(envs))

	// 4. Train QCFE(mscn): feature snapshot from simplified templates
	// (Algorithm 1) + difference-propagation feature reduction.
	est, err := qcfe.NewPipeline("mscn", qcfe.WithTrainIters(200)).Fit(bench, envs, train)
	if err != nil {
		log.Fatal(err)
	}
	sum := est.Evaluate(test)
	fmt.Printf("QCFE(mscn): mean q-error=%.3f  median=%.3f  pearson=%.3f\n",
		sum.Mean, sum.Median, sum.Pearson)
	fmt.Printf("            trained in %.2fs, %0.f%% of features pruned, snapshot cost %.1f ms\n",
		est.TrainSeconds(), 100*est.ReductionRatio(), est.SnapshotCollectionMs())

	// 5. Estimate the cost of a fresh query without executing it.
	sql := "SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 1000 AND 2000"
	pred, err := est.EstimateSQL(envs[0], sql)
	if err != nil {
		log.Fatal(err)
	}
	actual, err := bench.Execute(envs[0], sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: %s\n", sql)
	fmt.Printf("predicted %.4f ms, actual %.4f ms (q-error %.2f)\n",
		pred, actual.Ms, qcfe.QError(actual.Ms, pred))
	fmt.Printf("pg-style analytic estimate: %.4f ms (q-error %.2f)\n",
		bench.AnalyticEstimateMs(actual.Plan), qcfe.QError(actual.Ms, bench.AnalyticEstimateMs(actual.Plan)))
}
