// Feature reduction under the microscope (paper §IV, Figure 7): build the
// operator-level labeled dataset for TPC-H, train a probe model, and show
// which features each method prunes — difference propagation (FR) versus
// the gradient (GD) and greedy (Algorithm 2) baselines.
//
//	go run ./examples/featurereduction
package main

import (
	"fmt"
	"log"

	qcfe "repro"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/featred"
)

func main() {
	bench, err := qcfe.OpenBenchmark("tpch", 1)
	if err != nil {
		log.Fatal(err)
	}
	envs := qcfe.RandomEnvironments(4, 1)
	pool, err := bench.CollectWorkload(envs, 120, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, _ := pool.Split(0.8)

	// Build the QCFE feature space: general encoding + per-environment
	// snapshots.
	cfg := core.DefaultConfig("qppnet")
	snaps, _, err := core.BuildSnapshots(bench.Dataset(), envs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	f := &encoding.Featurizer{Enc: encoding.New(bench.Dataset().Schema), Snaps: snaps}
	data := core.OperatorDataset(f, train).Subsample(1500, 1)
	fmt.Printf("operator dataset: %d samples × %d features\n\n", len(data.X), data.Dim())

	probe := featred.TrainProbe(data, 32, 25, 1)
	fmt.Printf("probe model q-error on its own data: %.3f\n\n", featred.QErrorOf(probe, data, nil))

	frMask := featred.MaskFromScores(featred.DiffPropScores(probe, data.X, 100, 1), 0.02)
	gdMask := featred.MaskFromScores(featred.GradientScores(probe, data.X), 0.02)
	greedyMask := featred.GreedyReduce(probe, data.Subsample(300, 1))

	report := func(name string, mask []bool) {
		fmt.Printf("%-8s kept %d/%d features (%.1f%% reduced)\n",
			name, featred.CountKept(mask), data.Dim(), 100*featred.ReductionRatio(mask))
	}
	report("FR", frMask)
	report("GD", gdMask)
	report("Greedy", greedyMask)

	fmt.Println("\nfeatures dropped by FR (difference propagation):")
	for _, name := range featred.DroppedNames(frMask, data.Names) {
		fmt.Printf("  - %s\n", name)
	}
	fmt.Println("\nexpected shape (paper Figure 7): FR ≈ GD ≫ Greedy in reduction;")
	fmt.Println("unused table/index one-hots are the first features FR drops")
}
