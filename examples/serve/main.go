// Command serve demonstrates the train-once/serve-many flow end to end,
// in-process: train a QCFE pipeline, save it as a persistent artifact,
// load the artifact back (exactly what cmd/qcfe-serve does at startup),
// stand up the coalescing HTTP server, and fire concurrent requests at
// it — verifying the served predictions equal the library's.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	qcfe "repro"
	"repro/internal/serve"
)

func main() {
	// 1. Train a small pipeline (see examples/quickstart for the details).
	bench, err := qcfe.OpenBenchmark("sysbench", 1)
	check(err)
	envs := qcfe.RandomEnvironments(2, 1)
	pool, err := bench.CollectWorkload(envs, 100, 1)
	check(err)
	train, _ := pool.Split(0.8)
	fmt.Println("training…")
	est, err := qcfe.NewPipeline("mscn", qcfe.WithTrainIters(80), qcfe.WithSeed(1)).Fit(bench, envs, train)
	check(err)

	// 2. Save the estimator as a versioned binary artifact.
	path := "model.qcfe"
	f, err := os.Create(path)
	check(err)
	check(est.Save(f))
	check(f.Close())
	info, _ := os.Stat(path)
	fmt.Printf("saved artifact %s (%d bytes)\n", path, info.Size())
	defer os.Remove(path)

	// 3. Load it back — the serving process's startup path. The loaded
	// estimator predicts bit-identically to the in-memory one.
	f, err = os.Open(path)
	check(err)
	loaded, err := qcfe.LoadEstimator(f)
	f.Close()
	check(err)
	fmt.Printf("loaded %s estimator for %s (%d environments)\n",
		loaded.ModelName(), loaded.BenchmarkName(), len(loaded.Environments()))

	// Attach the query-fingerprint cache (what qcfe-serve does by
	// default): repeats short-circuit at the prediction tier, literal
	// variants reuse cached plan skeletons — results stay bit-identical.
	loaded.AttachCache(qcfe.NewQueryCache(qcfe.CacheOptions{}))

	// 4. Serve it: concurrent single-query requests coalesce into
	// micro-batches over the batched inference path.
	srv := serve.New(loaded, serve.Options{MaxBatch: 32, BatchWindow: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n", ts.URL)

	sqls := []string{
		"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300",
		"SELECT * FROM sbtest1 WHERE id = 7",
		"SELECT * FROM sbtest1 WHERE k < 500",
		"SELECT COUNT(*) FROM sbtest1 WHERE k BETWEEN 10 AND 90",
	}
	var wg sync.WaitGroup
	served := make([]float64, len(sqls))
	for i, sql := range sqls {
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			body := fmt.Sprintf(`{"env":0,"sql":%q}`, sql)
			resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
			check(err)
			defer resp.Body.Close()
			var out struct {
				Ms float64 `json:"ms"`
			}
			check(json.NewDecoder(resp.Body).Decode(&out))
			served[i] = out.Ms
		}(i, sql)
	}
	wg.Wait()

	// 5. Served predictions are bit-identical to direct library calls.
	env := loaded.Environments()[0]
	for i, sql := range sqls {
		direct, err := loaded.EstimateSQL(env, sql)
		check(err)
		match := "==" // bitwise
		if direct != served[i] {
			match = "!="
		}
		fmt.Printf("  %-55s served %.4f ms %s library %.4f ms\n", sql, served[i], match, direct)
	}

	// A warm repeat is served from the cache's prediction tier without
	// touching the coalescing queue (see "cache_hits" in the stats).
	warm, err := loaded.EstimateSQL(env, sqls[0])
	check(err)
	fmt.Printf("warm repeat: %.4f ms (prediction-tier hit)\n", warm)

	resp, err := http.Get(ts.URL + "/stats")
	check(err)
	var stats bytes.Buffer
	stats.ReadFrom(resp.Body)
	resp.Body.Close()
	fmt.Printf("stats: %s", stats.String())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
