package qcfe

import (
	"strings"
	"testing"

	"repro/internal/planner"
	"repro/internal/workload"
)

func TestOpenBenchmarkNames(t *testing.T) {
	for _, name := range Benchmarks() {
		b, err := OpenBenchmark(name, 1)
		if err != nil {
			t.Fatalf("OpenBenchmark(%s): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("name = %q", b.Name())
		}
	}
	if _, err := OpenBenchmark("oracle", 1); err == nil {
		t.Fatalf("unknown benchmark should error")
	}
}

func TestExecuteAndExplain(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	env := DefaultEnvironment()
	res, err := b.Execute(env, "SELECT * FROM sbtest1 WHERE id = 42")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 || res.Ms <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(res.Plan.Explain(), "Index Scan") {
		t.Fatalf("explain:\n%s", res.Plan.Explain())
	}
	if b.AnalyticEstimateMs(res.Plan) <= 0 {
		t.Fatalf("analytic estimate not positive")
	}
	if _, err := b.Execute(env, "not sql"); err == nil {
		t.Fatalf("bad SQL should error")
	}
}

func TestEndToEndPipeline(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(3, 1)
	pool, err := b.CollectWorkload(envs, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 360 {
		t.Fatalf("pool = %d", pool.Len())
	}
	train, test := pool.Split(0.8)
	est, err := NewPipeline("mscn",
		WithTrainIters(120), WithReferences(40), WithSeed(2),
	).Fit(b, envs, train)
	if err != nil {
		t.Fatal(err)
	}
	sum := est.Evaluate(test)
	if sum.Pearson < 0.4 {
		t.Fatalf("pearson = %v", sum.Pearson)
	}
	if est.TrainSeconds() <= 0 || est.SnapshotCollectionMs() <= 0 {
		t.Fatalf("bookkeeping missing")
	}
	// SQL-level estimation round trip.
	pred, err := est.EstimateSQL(envs[0], "SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300")
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 {
		t.Fatalf("negative prediction")
	}
	if _, err := est.EstimateSQL(envs[0], "garbage"); err == nil {
		t.Fatalf("bad SQL should error")
	}
	assertBatchEquivalence(t, est, envs[0], test)
}

// assertBatchEquivalence locks in the serving-path determinism rule: the
// batched estimation APIs must reproduce the per-sample APIs bit for bit.
func assertBatchEquivalence(t *testing.T, est *CostEstimator, env *Environment, test []workload.Sample) {
	t.Helper()
	plans := make([]*planner.Node, len(test))
	for i, s := range test {
		plans[i] = s.Plan
	}
	batch := est.EstimateBatch(plans)
	if len(batch) != len(plans) {
		t.Fatalf("EstimateBatch returned %d results for %d plans", len(batch), len(plans))
	}
	for i, p := range plans {
		if s := est.EstimateMs(p); batch[i] != s {
			t.Fatalf("plan %d: EstimateBatch %v != EstimateMs %v", i, batch[i], s)
		}
	}
	sqls := []string{
		"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300",
		"SELECT * FROM sbtest1 WHERE id = 7",
		"SELECT * FROM sbtest1 WHERE k < 500",
	}
	got, err := est.EstimateSQLBatch(env, sqls)
	if err != nil {
		t.Fatal(err)
	}
	for i, sql := range sqls {
		want, err := est.EstimateSQL(env, sql)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("sql %d: EstimateSQLBatch %v != EstimateSQL %v", i, got[i], want)
		}
	}
	if _, err := est.EstimateSQLBatch(env, []string{"SELECT * FROM sbtest1", "garbage"}); err == nil {
		t.Fatalf("bad SQL in batch should error")
	}
}

func TestPipelineOptions(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test := pool.Split(0.8)
	est, err := NewPipeline("qppnet",
		WithoutSnapshot(), WithReduction("none"), WithTrainIters(60),
		WithSnapshotMode("fst"), WithTemplateScale(1),
	).Fit(b, envs, train)
	if err != nil {
		t.Fatal(err)
	}
	if est.ReductionRatio() != 0 || est.SnapshotCollectionMs() != 0 {
		t.Fatalf("disabled stages leaked: %v %v", est.ReductionRatio(), est.SnapshotCollectionMs())
	}
	_ = est.Evaluate(test)
	// Batch/scalar equivalence on the qppnet pipeline too (the end-to-end
	// test covers mscn).
	assertBatchEquivalence(t, est, envs[0], test)
}

func TestTransferAPI(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	est, err := NewPipeline("mscn", WithTrainIters(80), WithReferences(30)).Fit(b, envs, train)
	if err != nil {
		t.Fatal(err)
	}
	h2 := DefaultEnvironment()
	h2.ID = 77
	h2.Knobs.WorkMemKB = 256
	pool2, err := b.CollectWorkload([]*Environment{h2}, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	tr2, te2 := pool2.Split(0.8)
	trans, err := est.Transfer(h2, tr2, 20)
	if err != nil {
		t.Fatal(err)
	}
	sum := trans.Evaluate(te2)
	if sum.Mean < 1 {
		t.Fatalf("impossible q-error %v", sum.Mean)
	}
}

func TestQErrorExported(t *testing.T) {
	if QError(10, 5) != 2 {
		t.Fatalf("QError broken")
	}
}
