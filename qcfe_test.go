package qcfe

import (
	"strings"
	"testing"
)

func TestOpenBenchmarkNames(t *testing.T) {
	for _, name := range Benchmarks() {
		b, err := OpenBenchmark(name, 1)
		if err != nil {
			t.Fatalf("OpenBenchmark(%s): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("name = %q", b.Name())
		}
	}
	if _, err := OpenBenchmark("oracle", 1); err == nil {
		t.Fatalf("unknown benchmark should error")
	}
}

func TestExecuteAndExplain(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	env := DefaultEnvironment()
	res, err := b.Execute(env, "SELECT * FROM sbtest1 WHERE id = 42")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 || res.Ms <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(res.Plan.Explain(), "Index Scan") {
		t.Fatalf("explain:\n%s", res.Plan.Explain())
	}
	if b.AnalyticEstimateMs(res.Plan) <= 0 {
		t.Fatalf("analytic estimate not positive")
	}
	if _, err := b.Execute(env, "not sql"); err == nil {
		t.Fatalf("bad SQL should error")
	}
}

func TestEndToEndPipeline(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(3, 1)
	pool, err := b.CollectWorkload(envs, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 360 {
		t.Fatalf("pool = %d", pool.Len())
	}
	train, test := pool.Split(0.8)
	est, err := NewPipeline("mscn",
		WithTrainIters(120), WithReferences(40), WithSeed(2),
	).Fit(b, envs, train)
	if err != nil {
		t.Fatal(err)
	}
	sum := est.Evaluate(test)
	if sum.Pearson < 0.4 {
		t.Fatalf("pearson = %v", sum.Pearson)
	}
	if est.TrainSeconds() <= 0 || est.SnapshotCollectionMs() <= 0 {
		t.Fatalf("bookkeeping missing")
	}
	// SQL-level estimation round trip.
	pred, err := est.EstimateSQL(envs[0], "SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300")
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 {
		t.Fatalf("negative prediction")
	}
	if _, err := est.EstimateSQL(envs[0], "garbage"); err == nil {
		t.Fatalf("bad SQL should error")
	}
}

func TestPipelineOptions(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test := pool.Split(0.8)
	est, err := NewPipeline("qppnet",
		WithoutSnapshot(), WithReduction("none"), WithTrainIters(60),
		WithSnapshotMode("fst"), WithTemplateScale(1),
	).Fit(b, envs, train)
	if err != nil {
		t.Fatal(err)
	}
	if est.ReductionRatio() != 0 || est.SnapshotCollectionMs() != 0 {
		t.Fatalf("disabled stages leaked: %v %v", est.ReductionRatio(), est.SnapshotCollectionMs())
	}
	_ = est.Evaluate(test)
}

func TestTransferAPI(t *testing.T) {
	b, err := OpenBenchmark("sysbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	envs := RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	est, err := NewPipeline("mscn", WithTrainIters(80), WithReferences(30)).Fit(b, envs, train)
	if err != nil {
		t.Fatal(err)
	}
	h2 := DefaultEnvironment()
	h2.ID = 77
	h2.Knobs.WorkMemKB = 256
	pool2, err := b.CollectWorkload([]*Environment{h2}, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	tr2, te2 := pool2.Split(0.8)
	trans, err := est.Transfer(h2, tr2, 20)
	if err != nil {
		t.Fatal(err)
	}
	sum := trans.Evaluate(te2)
	if sum.Mean < 1 {
		t.Fatalf("impossible q-error %v", sum.Mean)
	}
}

func TestQErrorExported(t *testing.T) {
	if QError(10, 5) != 2 {
		t.Fatalf("QError broken")
	}
}
